// Package trace implements the off-line memory-profiling path the paper
// describes in Section 3: "instrument the code such that a memory trace
// is produced even as the application executes ... it is necessary to
// run the output memory trace through a cache simulator in order to
// obtain the cache miss data". Traces are written in a compact
// varint-delta encoding and can be replayed through any number of cache
// models, yielding exactly the same per-load miss attribution as a
// live-attached cache.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"delinq/internal/cache"
	"delinq/internal/faultinject"
)

// Record is one data access.
type Record struct {
	PC    uint32
	Addr  uint32
	Store bool
}

// Writer streams records. The encoding stores the pc as a zig-zag delta
// from the previous record's pc (loops produce long runs of tiny deltas)
// and the address verbatim as a varint, with the store flag folded into
// the delta's low bit.
type Writer struct {
	w      *bufio.Writer
	lastPC uint32
	n      int64
	buf    [2 * binary.MaxVarintLen64]byte
}

// NewWriter wraps w for trace emission.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Add appends one record.
func (tw *Writer) Add(pc, addr uint32, store bool) error {
	delta := int64(pc) - int64(tw.lastPC)
	tw.lastPC = pc
	// zig-zag the delta, then make room for the store bit.
	zz := uint64((delta << 1) ^ (delta >> 63))
	head := zz << 1
	if store {
		head |= 1
	}
	n := binary.PutUvarint(tw.buf[:], head)
	n += binary.PutUvarint(tw.buf[n:], uint64(addr))
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Records returns how many accesses were written.
func (tw *Writer) Records() int64 { return tw.n }

// Flush drains buffered output.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes a trace stream.
type Reader struct {
	r      *bufio.Reader
	lastPC uint32
}

// NewReader wraps r for decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF.
func (tr *Reader) Next() (Record, error) {
	head, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Record{}, err
	}
	addr, err := binary.ReadUvarint(tr.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	store := head&1 == 1
	zz := head >> 1
	delta := int64(zz>>1) ^ -int64(zz&1)
	pc := uint32(int64(tr.lastPC) + delta)
	tr.lastPC = pc
	return Record{PC: pc, Addr: uint32(addr), Store: store}, nil
}

// ReplayStats is the outcome of replaying a trace through one cache.
type ReplayStats struct {
	Records    int64
	LoadMisses map[uint32]int64 // per-pc misses, loads only
	Cache      cache.Stats
}

// Replay feeds the trace through fresh caches of the given geometries
// and returns per-geometry statistics — the off-line half of memory
// profiling.
func Replay(r io.Reader, geoms ...cache.Config) ([]ReplayStats, error) {
	r = faultinject.Reader(faultinject.TraceFlip, "replay", r)
	caches := make([]*cache.Cache, len(geoms))
	stats := make([]ReplayStats, len(geoms))
	for i, g := range geoms {
		c, err := cache.New(g)
		if err != nil {
			return nil, err
		}
		caches[i] = c
		stats[i].LoadMisses = map[uint32]int64{}
	}
	tr := NewReader(r)
	var n int64
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		n++
		for i, c := range caches {
			if !c.Access(rec.Addr, rec.Store) && !rec.Store {
				stats[i].LoadMisses[rec.PC]++
			}
		}
	}
	for i, c := range caches {
		stats[i].Records = n
		stats[i].Cache = c.Stats()
	}
	return stats, nil
}

// Package callgraph builds the whole-program call graph of a
// disassembled image and computes its strongly connected components.
// The interprocedural address-pattern analysis walks this graph twice:
// bottom-up (callees before callers) to compute bounded function
// summaries, and top-down (callers before callees) to propagate the
// argument patterns arriving at each function.
//
// Direct calls (jal/bl to the entry of a known function) become edges.
// Indirect calls (jalr, blx) have no static target: they are recorded on the
// caller and surfaced through Graph.HasIndirect so clients can fall
// back to conservative behaviour where an unknown caller or callee
// would make propagation unsound.
package callgraph

import (
	"delinq/internal/disasm"
)

// Edge is one direct call site: instruction Site of Caller transfers to
// the entry of Callee.
type Edge struct {
	Site           int // instruction index in Caller
	Caller, Callee *disasm.Func
}

// Node is one function with its incoming and outgoing call edges.
type Node struct {
	Fn *disasm.Func
	// Calls lists the node's direct call sites in instruction order.
	Calls []Edge
	// CalledBy lists the direct call sites targeting this function,
	// ordered by caller position in the program and then by site.
	CalledBy []Edge
	// HasIndirect reports whether the function contains a jalr call,
	// whose callee is statically unknown.
	HasIndirect bool
	// SCC is the index of the node's strongly connected component in
	// Graph.SCCs() order (callees before callers).
	SCC int
}

// Graph is the call graph of one program.
type Graph struct {
	Prog  *disasm.Program
	Nodes []*Node // in Prog.Funcs order
	// HasIndirect reports whether any function contains an indirect
	// call, i.e. whether the edge set may be incomplete.
	HasIndirect bool

	byFunc map[*disasm.Func]*Node
	sccs   [][]*Node
}

// Build constructs the call graph of a disassembled program. A jal
// whose target is not the entry of a known function (a jump into the
// middle of one, or outside the text segment) is treated like an
// indirect call: no edge, HasIndirect set.
func Build(p *disasm.Program) *Graph {
	g := &Graph{Prog: p, byFunc: make(map[*disasm.Func]*Node, len(p.Funcs))}
	for _, fn := range p.Funcs {
		n := &Node{Fn: fn}
		g.Nodes = append(g.Nodes, n)
		g.byFunc[fn] = n
	}
	for _, n := range g.Nodes {
		for i, in := range n.Fn.Insts {
			if !in.IsCall() {
				continue
			}
			var callee *disasm.Func
			if t, ok := in.DirectJumpTarget(n.Fn.PC(i)); ok {
				if tf := p.FuncAt(t); tf != nil && tf.Entry == t {
					callee = tf
				}
			}
			if callee == nil {
				n.HasIndirect = true
				g.HasIndirect = true
				continue
			}
			n.Calls = append(n.Calls, Edge{Site: i, Caller: n.Fn, Callee: callee})
		}
	}
	// CalledBy in deterministic program order.
	for _, n := range g.Nodes {
		for _, e := range n.Calls {
			cn := g.byFunc[e.Callee]
			cn.CalledBy = append(cn.CalledBy, e)
		}
	}
	g.computeSCCs()
	return g
}

// NodeOf returns the node of fn, or nil if fn is not in the program.
func (g *Graph) NodeOf(fn *disasm.Func) *Node { return g.byFunc[fn] }

// CalleeAt returns the statically known callee of the call instruction
// at index i in fn, or nil for indirect or unresolvable calls.
func (g *Graph) CalleeAt(fn *disasm.Func, i int) *disasm.Func {
	n := g.byFunc[fn]
	if n == nil {
		return nil
	}
	for _, e := range n.Calls {
		if e.Site == i {
			return e.Callee
		}
	}
	return nil
}

// SCCs returns the strongly connected components in reverse
// topological order of the condensation: every component appears after
// the components it calls into, so a bottom-up (callee-first) pass can
// process the slices in order and a top-down pass in reverse. The
// order is deterministic for a given program.
func (g *Graph) SCCs() [][]*Node { return g.sccs }

// SameSCC reports whether a and b are mutually recursive (or equal and
// self-recursive is not required — a function is always in its own
// component).
func (g *Graph) SameSCC(a, b *disasm.Func) bool {
	na, nb := g.byFunc[a], g.byFunc[b]
	return na != nil && nb != nil && na.SCC == nb.SCC
}

// Recursive reports whether fn can reach itself through calls: it sits
// in a multi-function component or calls itself directly.
func (g *Graph) Recursive(fn *disasm.Func) bool {
	n := g.byFunc[fn]
	if n == nil {
		return false
	}
	if len(g.sccs[n.SCC]) > 1 {
		return true
	}
	for _, e := range n.Calls {
		if e.Callee == fn {
			return true
		}
	}
	return false
}

// computeSCCs runs Tarjan's algorithm iteratively (generated code can
// contain long call chains; no recursion on the Go stack). Tarjan emits
// each component only after every component reachable from it, so the
// emission order is exactly the callee-first order SCCs documents.
func (g *Graph) computeSCCs() {
	n := len(g.Nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	// Map nodes to dense indices via position (Nodes is in program order).
	pos := make(map[*Node]int, n)
	for i, nd := range g.Nodes {
		pos[nd] = i
	}
	var stack []int
	next := 0

	type frame struct {
		v  int
		ei int // next outgoing edge to consider
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei == 0 {
				if index[v] != -1 {
					// Duplicate push: two callers queued v before either
					// ran. Treat the edge as a plain non-tree edge.
					work = work[:len(work)-1]
					if len(work) > 0 && onStack[v] {
						p := work[len(work)-1].v
						if index[v] < low[p] {
							low[p] = index[v]
						}
					}
					continue
				}
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(g.Nodes[v].Calls) {
				w := pos[g.byFunc[g.Nodes[v].Calls[f.ei].Callee]]
				f.ei++
				if index[w] == -1 {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All edges done: pop, update parent, emit component if root.
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []*Node
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.Nodes[w].SCC = len(g.sccs)
					comp = append(comp, g.Nodes[w])
					if w == v {
						break
					}
				}
				// Emit members in program order for determinism.
				for i, j := 0, len(comp)-1; i < j; i, j = i+1, j-1 {
					comp[i], comp[j] = comp[j], comp[i]
				}
				g.sccs = append(g.sccs, comp)
			}
		}
	}
}

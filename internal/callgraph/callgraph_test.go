package callgraph

import (
	"testing"

	"delinq/internal/asm"
	"delinq/internal/disasm"
)

// buildGraph assembles src and returns its call graph.
func buildGraph(t *testing.T, src string) *Graph {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	return Build(p)
}

const chainSrc = `
	.text
	.func leaf, frame=0
leaf:
	lw $v0, 0($a0)
	jr $ra
	.endfunc
	.func mid, frame=0
mid:
	jal leaf
	jr $ra
	.endfunc
	.func main, frame=0
main:
	jal mid
	jal leaf
	jr $ra
	.endfunc
`

func TestDirectEdges(t *testing.T) {
	g := buildGraph(t, chainSrc)
	main := g.Prog.FuncByName("main")
	mid := g.Prog.FuncByName("mid")
	leaf := g.Prog.FuncByName("leaf")
	if main == nil || mid == nil || leaf == nil {
		t.Fatal("functions missing")
	}
	if g.HasIndirect {
		t.Error("no indirect calls expected")
	}
	mn := g.NodeOf(main)
	if len(mn.Calls) != 2 || mn.Calls[0].Callee != mid || mn.Calls[1].Callee != leaf {
		t.Errorf("main calls = %v", mn.Calls)
	}
	if got := g.CalleeAt(main, mn.Calls[0].Site); got != mid {
		t.Errorf("CalleeAt(main, %d) = %v", mn.Calls[0].Site, got)
	}
	if g.CalleeAt(main, 99) != nil {
		t.Error("CalleeAt at a non-call index should be nil")
	}
	ln := g.NodeOf(leaf)
	if len(ln.CalledBy) != 2 {
		t.Errorf("leaf CalledBy = %v", ln.CalledBy)
	}
}

func TestSCCOrderCalleesFirst(t *testing.T) {
	g := buildGraph(t, chainSrc)
	// Reverse topological order: each component appears after the
	// components it calls into.
	seen := map[int]bool{}
	for i, comp := range g.SCCs() {
		if len(comp) != 1 {
			t.Fatalf("unexpected multi-node SCC %d", i)
		}
		for _, e := range comp[0].Calls {
			if !seen[g.NodeOf(e.Callee).SCC] {
				t.Errorf("%s processed before its callee %s", comp[0].Fn.Name, e.Callee.Name)
			}
		}
		seen[comp[0].SCC] = true
	}
	if len(g.SCCs()) < 3 {
		t.Fatalf("expected >= 3 SCCs, got %d", len(g.SCCs()))
	}
}

func TestMutualRecursionSCC(t *testing.T) {
	g := buildGraph(t, `
	.text
	.func even, frame=0
even:
	jal odd
	jr $ra
	.endfunc
	.func odd, frame=0
odd:
	jal even
	jr $ra
	.endfunc
	.func main, frame=0
main:
	jal even
	jr $ra
	.endfunc
`)
	even := g.Prog.FuncByName("even")
	odd := g.Prog.FuncByName("odd")
	main := g.Prog.FuncByName("main")
	if !g.SameSCC(even, odd) {
		t.Error("even and odd should share an SCC")
	}
	if g.SameSCC(even, main) {
		t.Error("main must not join the recursive SCC")
	}
	if !g.Recursive(even) || !g.Recursive(odd) || g.Recursive(main) {
		t.Error("recursion flags wrong")
	}
	// Callee-first order: the recursive component precedes main's.
	if g.NodeOf(even).SCC > g.NodeOf(main).SCC {
		t.Error("recursive SCC should be emitted before its caller")
	}
}

func TestSelfRecursion(t *testing.T) {
	g := buildGraph(t, `
	.text
	.func rec, frame=0
rec:
	jal rec
	jr $ra
	.endfunc
	.func main, frame=0
main:
	jal rec
	jr $ra
	.endfunc
`)
	rec := g.Prog.FuncByName("rec")
	if !g.Recursive(rec) {
		t.Error("self call should mark the function recursive")
	}
}

func TestIndirectCallFlag(t *testing.T) {
	g := buildGraph(t, `
	.text
	.func main, frame=0
main:
	jalr $ra, $t0
	jr $ra
	.endfunc
`)
	if !g.HasIndirect {
		t.Error("jalr should set HasIndirect")
	}
	if n := g.NodeOf(g.Prog.FuncByName("main")); !n.HasIndirect || len(n.Calls) != 0 {
		t.Errorf("node = %+v", n)
	}
}

package pattern

import (
	"testing"

	"delinq/internal/asm"
	"delinq/internal/disasm"
	"delinq/internal/minic"
)

// compileLoads compiles mini-C and returns the analysed loads of main.
func compileLoads(t *testing.T, src string, optimize bool) []*Load {
	t.Helper()
	asmText, err := minic.Compile(src, minic.Options{Optimize: optimize})
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(asmText)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName("main")
	if f == nil {
		t.Fatal("no main")
	}
	return AnalyzeFunc(f, DefaultConfig())
}

const arrayWalk = `
int a[4096];
int main() {
	int sum = 0;
	int i;
	for (i = 0; i < 4096; i++) sum += a[i];
	return sum & 255;
}
`

// TestO0ArrayWalkShape: unoptimised array walks show the full -O0 idiom:
// gp base, stack-slot index dereference, shift, and a slot recurrence.
func TestO0ArrayWalkShape(t *testing.T) {
	loads := compileLoads(t, arrayWalk, false)
	found := false
	for _, ld := range loads {
		for _, p := range ld.Patterns {
			if p.CountGP() == 1 && p.CountSP() >= 1 && p.HasMulOrShift() &&
				p.MaxDeref() == 1 && p.HasRecurrence() {
				found = true
			}
		}
	}
	if !found {
		var pats []string
		for _, ld := range loads {
			for _, p := range ld.Patterns {
				pats = append(pats, p.String())
			}
		}
		t.Errorf("no gp+slot-deref+shift+rec pattern among %v", pats)
	}
}

// TestOptArrayWalkShape: with -O the index lives in a callee-saved
// register, so the pattern keeps the shift and becomes a *register*
// recurrence without any stack dereference.
func TestOptArrayWalkShape(t *testing.T) {
	loads := compileLoads(t, arrayWalk, true)
	found := false
	for _, ld := range loads {
		for _, p := range ld.Patterns {
			if p.HasMulOrShift() && p.HasRecurrence() && p.MaxDeref() == 0 &&
				p.CountSP() == 0 {
				found = true
			}
		}
	}
	if !found {
		var pats []string
		for _, ld := range loads {
			for _, p := range ld.Patterns {
				pats = append(pats, p.String())
			}
		}
		t.Errorf("no register-recurrent shift pattern among %v", pats)
	}
}

const chainWalk = `
struct Node { int key; struct Node *next; };
int main() {
	struct Node *head = 0;
	int i;
	for (i = 0; i < 100; i++) {
		struct Node *n = malloc(sizeof(struct Node));
		n->key = i;
		n->next = head;
		head = n;
	}
	int sum = 0;
	struct Node *p = head;
	while (p) { sum += p->key; p = p->next; }
	return sum & 255;
}
`

// TestOptChainWalkShape: under -O the pointer p is register-promoted;
// p = p->next forms a register recurrence through a dereference.
func TestOptChainWalkShape(t *testing.T) {
	loads := compileLoads(t, chainWalk, true)
	found := false
	for _, ld := range loads {
		for _, p := range ld.Patterns {
			if p.HasRecurrence() && p.MaxDeref() >= 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no recurrent dereference pattern in optimised chain walk")
	}
}

// TestO0ChainDerefLevels: unoptimised, the chain hop loads p from its
// slot, so the next-field load is one dereference deep and recurrent
// (through the slot).
func TestO0ChainDerefLevels(t *testing.T) {
	loads := compileLoads(t, chainWalk, false)
	rec1 := false
	for _, ld := range loads {
		for _, p := range ld.Patterns {
			if p.MaxDeref() == 1 && p.HasRecurrence() {
				rec1 = true
			}
		}
	}
	if !rec1 {
		t.Error("no single-deref recurrent pattern in -O0 chain walk")
	}
}

// TestParamPatternSurvivesPromotion: a parameter used as a base keeps
// its param leaf under -O (homed via a register move, not a slot).
func TestParamPatternSurvivesPromotion(t *testing.T) {
	src := `
int get(int *p) { return p[3]; }
int main() {
	int x[8];
	x[3] = 9;
	return get(x);
}
`
	for _, opt := range []bool{false, true} {
		asmText, err := minic.Compile(src, minic.Options{Optimize: opt})
		if err != nil {
			t.Fatal(err)
		}
		img, err := asm.Assemble(asmText)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := disasm.Disassemble(img)
		if err != nil {
			t.Fatal(err)
		}
		f := prog.FuncByName("get")
		loads := AnalyzeFunc(f, DefaultConfig())
		ok := false
		for _, ld := range loads {
			for _, p := range ld.Patterns {
				// -O0: the slot holding p dereferences; -O: param leaf.
				if p.CountParam() == 1 || (p.MaxDeref() == 1 && p.CountSP() == 1) {
					ok = true
				}
			}
		}
		if !ok {
			t.Errorf("opt=%v: param-based access shape missing", opt)
		}
	}
}

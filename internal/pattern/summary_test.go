package pattern

import (
	"testing"

	"delinq/internal/asm"
	"delinq/internal/disasm"
	"delinq/internal/minic"
)

func TestSummaryRetPattern(t *testing.T) {
	p := assembleProg(t, `
	.func next, frame=0
next:
	lw $v0, 8($a0)
	jr $ra
	.endfunc
	.func main, frame=0
main:
	jal next
	jr $ra
	.endfunc
`)
	s := ComputeSummaries(p, DefaultConfig())
	sum := s.Of(p.FuncByName("next"))
	if len(sum.Ret) != 1 {
		t.Fatalf("Ret = %v", sum.Ret)
	}
	if got := sum.Ret[0].String(); got != "8(param:a0)" {
		t.Errorf("Ret[0] = %q, want 8(param:a0)", got)
	}
	if sum.ArgDeref[0] != 1 {
		t.Errorf("ArgDeref[0] = %d, want 1", sum.ArgDeref[0])
	}
	if sum.ArgDeref[1] != 0 {
		t.Errorf("ArgDeref[1] = %d, want 0", sum.ArgDeref[1])
	}
}

// An argument forwarded through a wrapper inherits the inner function's
// consumption depth.
func TestSummaryArgDerefTransitive(t *testing.T) {
	p := assembleProg(t, `
	.func inner, frame=0
inner:
	lw $t0, 0($a0)
	lw $t1, 0($t0)
	jr $ra
	.endfunc
	.func outer, frame=0
outer:
	move $a0, $a1
	jal inner
	jr $ra
	.endfunc
	.func main, frame=0
main:
	jal outer
	jr $ra
	.endfunc
`)
	s := ComputeSummaries(p, DefaultConfig())
	if d := s.Of(p.FuncByName("inner")).ArgDeref[0]; d != 2 {
		t.Errorf("inner ArgDeref[0] = %d, want 2 (chased twice)", d)
	}
	out := s.Of(p.FuncByName("outer"))
	if out.ArgDeref[1] != 2 {
		t.Errorf("outer ArgDeref[1] = %d, want 2 (forwarded to inner's a0)", out.ArgDeref[1])
	}
	if out.ArgDeref[0] != 0 {
		t.Errorf("outer ArgDeref[0] = %d, want 0 (a0 is overwritten)", out.ArgDeref[0])
	}
}

// A function whose return value is unanalysable gets a nil Ret so the
// caller keeps its bare ret:v0 leaf (intra behaviour).
func TestSummaryUninformativeRetDropped(t *testing.T) {
	p := assembleProg(t, `
	.func opaque, frame=0
opaque:
	jalr $ra, $t9
	jr $ra
	.endfunc
	.func main, frame=0
main:
	jal opaque
	jr $ra
	.endfunc
`)
	s := ComputeSummaries(p, DefaultConfig())
	if sum := s.Of(p.FuncByName("opaque")); sum.Ret != nil {
		t.Errorf("Ret = %v, want nil for an uninformative summary", sum.Ret)
	}
}

// Phase 1 runs one goroutine per function; the result must not depend
// on scheduling.
func TestSummariesDeterministic(t *testing.T) {
	src := `
struct node { int key; struct node *next; };
struct node pool[16];
struct node *step(struct node *p) { return p->next; }
int get(struct node *p) { return p->key; }
int sum2(struct node *p) { return get(p) + get(step(p)); }
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 15; i++) pool[i].next = &pool[i+1];
	for (i = 0; i < 8; i++) s += sum2(&pool[i]);
	return s & 255;
}
`
	asmText, err := minic.Compile(src, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(asmText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	conf := DefaultConfig()
	conf.Interprocedural = true
	key := func(loads []*Load) string {
		out := ""
		for _, l := range loads {
			for _, pat := range l.Patterns {
				out += pat.Key() + ";"
			}
			out += "|"
		}
		return out
	}
	want := key(AnalyzeProgram(p, conf))
	for i := 0; i < 10; i++ {
		if got := key(AnalyzeProgram(p, conf)); got != want {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// benchProgram is the workload for the analysis benchmarks: a call-heavy
// pointer-chasing program in the style of the mcf model.
const benchProgram = `
struct node { int key; int weight; struct node *next; };
struct node pool[256];
struct node *head;
int total;

struct node *step(struct node *p) { return p->next; }
int keyof(struct node *p) { return p->key; }
int weigh(struct node *p) { return p->weight * 2 + keyof(p); }
int scan(struct node *p) {
	int s = 0;
	while (p) {
		s = s + weigh(p);
		p = step(p);
	}
	return s;
}
int main() {
	int i;
	for (i = 0; i < 255; i++) {
		pool[i].key = i;
		pool[i].weight = i * 3;
		pool[i].next = &pool[i+1];
	}
	pool[255].next = 0;
	head = &pool[0];
	total = scan(head);
	for (i = 0; i < 4; i++) total = total + scan(&pool[i * 8]);
	print_int(total);
	return total & 255;
}
`

func benchProg(b *testing.B) *disasm.Program {
	b.Helper()
	asmText, err := minic.Compile(benchProgram, minic.Options{Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	img, err := asm.Assemble(asmText)
	if err != nil {
		b.Fatal(err)
	}
	p, err := disasm.Disassemble(img)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkAnalyzeProgram(b *testing.B) {
	p := benchProg(b)
	for _, mode := range []struct {
		name  string
		inter bool
	}{{"intra", false}, {"inter", true}} {
		b.Run(mode.name, func(b *testing.B) {
			conf := DefaultConfig()
			conf.Interprocedural = mode.inter
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if loads := AnalyzeProgram(p, conf); len(loads) == 0 {
					b.Fatal("no loads")
				}
			}
		})
	}
}

func BenchmarkSummaries(b *testing.B) {
	p := benchProg(b)
	conf := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := ComputeSummaries(p, conf)
		if s.Of(p.Funcs[0]) == nil {
			b.Fatal("no summary")
		}
	}
}

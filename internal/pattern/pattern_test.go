package pattern

import (
	"testing"

	"delinq/internal/asm"
	"delinq/internal/disasm"
	"delinq/internal/isa"
)

// loadsOf assembles src and returns the analysed loads of fn.
func loadsOf(t *testing.T, src, fn string) []*Load {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	f := p.FuncByName(fn)
	if f == nil {
		t.Fatalf("no function %q", fn)
	}
	return AnalyzeFunc(f, DefaultConfig())
}

// the single load matching op in the list.
func oneLoad(t *testing.T, loads []*Load, op isa.Op, rt isa.Reg) *Load {
	t.Helper()
	for _, l := range loads {
		if l.Inst.Op == op && l.Inst.Rt == rt {
			return l
		}
	}
	t.Fatalf("load %v->%v not found among %d loads", op, rt, len(loads))
	return nil
}

func TestScalarStackLoad(t *testing.T) {
	loads := loadsOf(t, `
main:
	lw $t0, 8($sp)
	jr $ra
`, "main")
	l := loads[0]
	if len(l.Patterns) != 1 {
		t.Fatalf("patterns = %v", l.Patterns)
	}
	p := l.Patterns[0]
	if p.String() != "sp+8" {
		t.Errorf("pattern = %q", p)
	}
	if p.CountSP() != 1 || p.MaxDeref() != 0 || p.HasMulOrShift() || p.HasRecurrence() {
		t.Errorf("features wrong for %q", p)
	}
}

func TestGlobalLoad(t *testing.T) {
	loads := loadsOf(t, `
	.data
g: .word 1
	.text
main:
	lw $t0, g
	jr $ra
`, "main")
	p := loads[0].Patterns[0]
	if p.CountGP() != 1 || p.CountSP() != 0 || p.MaxDeref() != 0 {
		t.Errorf("global pattern = %q", p)
	}
}

func TestStackArrayIndexing(t *testing.T) {
	// a[i] with both a (at sp+16) and i (at sp+4) on the stack, the -O0
	// idiom: two sp occurrences, a shift, one dereference.
	loads := loadsOf(t, `
main:
	lw $t0, 4($sp)
	sll $t1, $t0, 2
	addiu $t2, $sp, 16
	add $t3, $t2, $t1
	lw $v0, 0($t3)
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	if len(l.Patterns) != 1 {
		t.Fatalf("patterns = %v", l.Patterns)
	}
	p := l.Patterns[0]
	if p.CountSP() != 2 {
		t.Errorf("sp count = %d in %q", p.CountSP(), p)
	}
	if !p.HasMulOrShift() {
		t.Errorf("no shift found in %q", p)
	}
	if p.MaxDeref() != 1 {
		t.Errorf("deref = %d in %q", p.MaxDeref(), p)
	}
}

func TestPointerChasingDerefLevels(t *testing.T) {
	// v = p->next->key with p on the stack: two levels in the address
	// computation of the final load.
	loads := loadsOf(t, `
main:
	lw $t0, 4($sp)     # p
	lw $t1, 8($t0)     # p->next
	lw $v0, 0($t1)     # ->key
	jr $ra
`, "main")
	if got := oneLoad(t, loads, isa.LW, isa.T0).Patterns[0].MaxDeref(); got != 0 {
		t.Errorf("p load deref = %d", got)
	}
	if got := oneLoad(t, loads, isa.LW, isa.T1).Patterns[0].MaxDeref(); got != 1 {
		t.Errorf("p->next deref = %d", got)
	}
	l := oneLoad(t, loads, isa.LW, isa.V0)
	if got := l.Patterns[0].MaxDeref(); got != 2 {
		t.Errorf("p->next->key deref = %d in %q", got, l.Patterns[0])
	}
}

func TestPatternStringNotation(t *testing.T) {
	loads := loadsOf(t, `
main:
	lw $t0, 45($sp)
	addiu $t1, $t0, 30
	lw $v0, 0($t1)
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	// The paper's example: "45(sp)+30".
	if got := l.Patterns[0].String(); got != "45(sp)+30" {
		t.Errorf("pattern = %q, want 45(sp)+30", got)
	}
}

func TestRegisterRecurrence(t *testing.T) {
	loads := loadsOf(t, `
main:
	li $t0, 0x1000
loop:
	lw $t1, 0($t0)
	addiu $t0, $t0, 4
	bne $t1, $zero, loop
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.T1)
	anyRec := false
	for _, p := range l.Patterns {
		if p.HasRecurrence() {
			anyRec = true
		}
	}
	if !anyRec {
		t.Errorf("no recurrent pattern among %v", l.Patterns)
	}
}

func TestStackSlotRecurrence(t *testing.T) {
	// Induction variable i kept in a stack slot: i = i + 1 each
	// iteration; a load whose address depends on slot 4 is recurrent.
	loads := loadsOf(t, `
main:
	sw $zero, 4($sp)
loop:
	lw $t0, 4($sp)      # i
	sll $t1, $t0, 2
	addiu $t2, $sp, 32
	add $t2, $t2, $t1
	lw $v0, 0($t2)      # a[i]
	lw $t0, 4($sp)
	addiu $t0, $t0, 1
	sw $t0, 4($sp)      # i = i+1
	slti $at, $t0, 10
	bne $at, $zero, loop
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	if !l.Patterns[0].HasRecurrence() {
		t.Errorf("array walk via stack induction var not recurrent: %q", l.Patterns[0])
	}
	// The dereference level must still count through the Rec marker.
	if l.Patterns[0].MaxDeref() != 1 {
		t.Errorf("deref through rec = %d", l.Patterns[0].MaxDeref())
	}
}

func TestNonRecurrentSlotNotMarked(t *testing.T) {
	loads := loadsOf(t, `
main:
	li $t0, 7
	sw $t0, 4($sp)
	lw $t1, 4($sp)
	lw $v0, 0($t1)
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	if l.Patterns[0].HasRecurrence() {
		t.Errorf("straight-line slot marked recurrent: %q", l.Patterns[0])
	}
}

func TestMultiplePatternsAtJoin(t *testing.T) {
	loads := loadsOf(t, `
main:
	beq $a0, $zero, other
	addiu $t0, $sp, 16
	b go
other:
	addiu $t0, $gp, 8
go:
	lw $v0, 0($t0)
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	if len(l.Patterns) != 2 {
		t.Fatalf("patterns = %v, want 2", l.Patterns)
	}
	var sawSP, sawGP bool
	for _, p := range l.Patterns {
		if p.CountSP() == 1 {
			sawSP = true
		}
		if p.CountGP() == 1 {
			sawGP = true
		}
	}
	if !sawSP || !sawGP {
		t.Errorf("join patterns = %v", l.Patterns)
	}
}

func TestParamAndRetLeaves(t *testing.T) {
	loads := loadsOf(t, `
main:
	lw $t0, 0($a0)
	jal helper
	lw $t1, 4($v0)
	jr $ra
helper:
	jr $ra
`, "main")
	p0 := oneLoad(t, loads, isa.LW, isa.T0).Patterns[0]
	if p0.CountParam() != 1 {
		t.Errorf("param pattern = %q", p0)
	}
	p1 := oneLoad(t, loads, isa.LW, isa.T1).Patterns[0]
	if p1.CountRet() != 1 {
		t.Errorf("ret pattern = %q", p1)
	}
}

func TestConstantFoldingLuiOri(t *testing.T) {
	loads := loadsOf(t, `
main:
	lui $t0, 0x1000
	ori $t0, $t0, 0x20
	lw $v0, 4($t0)
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	p := l.Patterns[0]
	if p.Kind != Const || p.Val != 0x10000024 {
		t.Errorf("lui/ori folded to %q, want const 0x10000024", p)
	}
}

func TestMulInAddress(t *testing.T) {
	loads := loadsOf(t, `
main:
	lw $t0, 4($sp)
	li $t1, 12
	mul $t2, $t0, $t1
	addiu $t3, $sp, 64
	add $t3, $t3, $t2
	lw $v0, 0($t3)
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	if !l.Patterns[0].HasMulOrShift() {
		t.Errorf("mul not detected in %q", l.Patterns[0])
	}
}

func TestFPLoadGetsPattern(t *testing.T) {
	loads := loadsOf(t, `
main:
	addiu $t0, $sp, 32
	lwc1 $f0, 8($t0)
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LWC1, 4*0)
	if l.Patterns[0].String() != "sp+40" {
		t.Errorf("lwc1 pattern = %q", l.Patterns[0])
	}
}

func TestUnknownForLogicOps(t *testing.T) {
	loads := loadsOf(t, `
main:
	and $t0, $a0, $a1
	lw $v0, 0($t0)
	jr $ra
`, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	if l.Patterns[0].Kind != Unknown {
		t.Errorf("logic-op base = %q, want ?", l.Patterns[0])
	}
}

func TestTruncationOnDeepChain(t *testing.T) {
	src := "main:\n\tmove $t0, $a0\n"
	for i := 0; i < 40; i++ {
		src += "\taddiu $t0, $t0, 1\n\tsll $t0, $t0, 1\n"
	}
	src += "\tlw $v0, 0($t0)\n\tjr $ra\n"
	loads := loadsOf(t, src, "main")
	l := oneLoad(t, loads, isa.LW, isa.V0)
	if !l.Truncated {
		t.Error("deep chain not flagged as truncated")
	}
}

func TestExprHelpers(t *testing.T) {
	e := binary(Add, spLeaf, NewConst(8))
	if !e.Equal(binary(Add, spLeaf, NewConst(8))) {
		t.Error("Equal failed on identical trees")
	}
	if e.Equal(binary(Add, spLeaf, NewConst(12))) {
		t.Error("Equal matched different constants")
	}
	if e.Key() == binary(Add, gpLeaf, NewConst(8)).Key() {
		t.Error("Key collision between sp and gp trees")
	}
	if e.Size() != 3 {
		t.Errorf("Size = %d", e.Size())
	}
	d := NewDeref(e)
	if d.String() != "8(sp)" {
		t.Errorf("deref string = %q", d)
	}
	if got := binary(Sub, NewConst(10), NewConst(4)); got.Val != 6 {
		t.Errorf("const fold sub = %v", got)
	}
	if got := binary(Shl, NewConst(3), NewConst(2)); got.Val != 12 {
		t.Errorf("const fold shl = %v", got)
	}
	if got := binary(Mul, NewConst(3), NewConst(5)); got.Val != 15 {
		t.Errorf("const fold mul = %v", got)
	}
	if got := binary(Shr, NewConst(16), NewConst(2)); got.Val != 4 {
		t.Errorf("const fold shr = %v", got)
	}
	if got := binary(Add, zeroConst, spLeaf); got != spLeaf {
		t.Errorf("0+sp not simplified: %v", got)
	}
}

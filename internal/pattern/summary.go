// Interprocedural address patterns: bounded per-function summaries over
// the call graph. Phase 1 walks the strongly connected components in
// callee-first order (functions computed in parallel, memoised through
// internal/memo) and records, per function, the address pattern of its
// return value and how deeply its loads dereference each argument
// register. Phase 2 walks callers-first, propagating the argument
// patterns that arrive at every direct call site, and rebuilds each
// function's load patterns with both directions resolved: a Ret leaf
// becomes the callee's return summary instantiated at the call site,
// and a Param leaf becomes the union of the caller-side argument
// patterns. Recursion terminates because calls within one component
// collapse to the Rec marker, and all expansion shares the existing
// MaxPatterns/MaxNodes/MaxDepth budgets.
package pattern

import (
	"strconv"
	"sync"

	"delinq/internal/callgraph"
	"delinq/internal/dataflow"
	"delinq/internal/disasm"
	"delinq/internal/isa"
	"delinq/internal/isa/mips"
	"delinq/internal/memo"
)

// Summary is the bounded interprocedural abstract of one function.
type Summary struct {
	Fn *disasm.Func
	// Ret holds the address patterns of the function's return value
	// ($v0) at its return sites, expressed over the function's own
	// parameters, gp, and dereferences. Nil when nothing informative is
	// known (the value is unanalysable or the function returns none).
	Ret []*Expr
	// ArgDeref[k] is the maximum dereference depth the function's loads
	// (transitively, through its direct callees) apply to argument
	// register a<k>; 0 means the argument is never used as (part of) a
	// load address.
	ArgDeref [4]int
	// Truncated reports that a budget cut the summary short.
	Truncated bool
}

// Summaries holds the per-function summaries of one program plus the
// caller-side argument patterns of phase 2.
type Summaries struct {
	cg   *callgraph.Graph
	conf Config
	m    isa.Machine

	cache memo.Cache[*Summary]

	// incoming maps a function to the deduplicated argument patterns
	// arriving at its direct call sites, per argument register. It is
	// nil during phase 1 (summaries must stay in terms of the
	// function's own parameters) and populated serially during the
	// top-down phase 2 pass, so no lock is needed.
	incoming map[*disasm.Func]*[4][]*Expr
}

// ComputeSummaries builds the call graph of p and computes every
// function's Summary bottom-up (callees first). Functions are computed
// concurrently; the memo layer guarantees each summary is computed
// exactly once, with cross-component dependencies resolved by joining
// the in-flight computation.
func ComputeSummaries(p *disasm.Program, conf Config) *Summaries {
	conf = conf.withDefaults()
	m, err := isa.ByName(p.Image.ISAName())
	if err != nil {
		m = mips.M
	}
	s := &Summaries{cg: callgraph.Build(p), conf: conf, m: m}
	var wg sync.WaitGroup
	for _, comp := range s.cg.SCCs() {
		for _, n := range comp {
			wg.Add(1)
			go func(fn *disasm.Func) {
				defer wg.Done()
				s.summaryOf(fn)
			}(n.Fn)
		}
	}
	wg.Wait()
	return s
}

// Graph returns the underlying call graph.
func (s *Summaries) Graph() *callgraph.Graph { return s.cg }

// Of returns the summary of fn, computing it if needed.
func (s *Summaries) Of(fn *disasm.Func) *Summary { return s.summaryOf(fn) }

func summaryKey(fn *disasm.Func) string { return strconv.FormatUint(uint64(fn.Entry), 16) }

func (s *Summaries) summaryOf(fn *disasm.Func) *Summary {
	if s.cg.NodeOf(fn) == nil {
		return nil
	}
	sum, _ := s.cache.Do(summaryKey(fn), func() (*Summary, error) {
		return s.compute(fn), nil
	})
	return sum
}

// compute builds one function's summary. Callee summaries outside fn's
// component are demanded recursively (they are in earlier components,
// so the recursion follows the condensation DAG and terminates); calls
// within the component resolve to the Rec marker.
func (s *Summaries) compute(fn *disasm.Func) *Summary {
	node := s.cg.NodeOf(fn)
	mates := map[*disasm.Func]bool{fn: true}
	for _, m := range s.cg.SCCs()[node.SCC] {
		mates[m.Fn] = true
	}
	b := newBuilder(fn, s.conf, s.m)
	b.ipc = s
	b.sccMates = mates

	sum := &Summary{Fn: fn}

	// Return-value patterns of $v0 at each return site (jr $ra).
	seen := map[string]bool{}
	informative := false
	for i, in := range fn.Insts {
		if !in.IsReturn() {
			continue
		}
		b.truncated = false
		for _, e := range b.expandReg(isa.V0, i, 0, map[int]bool{}) {
			if len(sum.Ret) >= s.conf.MaxPatterns {
				sum.Truncated = true
				break
			}
			if k := e.Key(); !seen[k] {
				seen[k] = true
				sum.Ret = append(sum.Ret, e)
				if e.Kind != Unknown && e.Kind != Ret {
					informative = true
				}
			}
		}
		sum.Truncated = sum.Truncated || b.truncated
	}
	if !informative {
		// A summary of pure unknowns is worse than keeping the caller's
		// own Ret leaf: drop it.
		sum.Ret = nil
	}

	// How deeply the function's own loads dereference each argument:
	// the load itself adds one level over the address pattern.
	for i, in := range fn.Insts {
		if !in.IsLoad() {
			continue
		}
		b.truncated = false
		for _, base := range b.expandReg(in.Rs, i, 0, map[int]bool{}) {
			p := binary(Add, base, NewConst(in.MemOffset()))
			for k := 0; k < 4; k++ {
				if d := derefOverParam(p, isa.A0+isa.Reg(k)); d >= 0 && d+1 > sum.ArgDeref[k] {
					sum.ArgDeref[k] = d + 1
				}
			}
		}
	}

	// Arguments forwarded into direct callees inherit the callee's
	// consumption depth, so a chain of helpers still reports how far
	// the original argument is chased.
	for _, e := range node.Calls {
		if mates[e.Callee] {
			continue
		}
		cs := s.summaryOf(e.Callee)
		if cs == nil {
			continue
		}
		for k := 0; k < 4; k++ {
			if cs.ArgDeref[k] == 0 {
				continue
			}
			b.truncated = false
			for _, a := range b.expandReg(isa.A0+isa.Reg(k), e.Site, 0, map[int]bool{}) {
				for r := 0; r < 4; r++ {
					if d := derefOverParam(a, isa.A0+isa.Reg(r)); d >= 0 && d+cs.ArgDeref[k] > sum.ArgDeref[r] {
						sum.ArgDeref[r] = d + cs.ArgDeref[k]
					}
				}
			}
		}
	}
	return sum
}

// derefOverParam returns the maximum number of dereferences on a path
// from the root of e to a Param leaf of reg, or -1 if reg does not
// occur.
func derefOverParam(e *Expr, reg isa.Reg) int {
	best := -1
	var walk func(e *Expr, d int)
	walk = func(e *Expr, d int) {
		switch e.Kind {
		case Param:
			if e.Reg == reg && d > best {
				best = d
			}
			return
		case Deref:
			walk(e.L, d+1)
			return
		}
		if e.L != nil {
			walk(e.L, d)
		}
		if e.R != nil {
			walk(e.R, d)
		}
	}
	walk(e, 0)
	return best
}

// analyzeProgram is phase 2: walk the condensation top-down (callers
// before callees), analyse each function's loads with interprocedural
// resolution, and propagate the argument patterns observed at each
// direct call site into the callee's incoming set. Output order matches
// the intraprocedural AnalyzeProgram exactly.
func (s *Summaries) analyzeProgram(p *disasm.Program) []*Load {
	byFn := make(map[*disasm.Func][]*Load, len(p.Funcs))
	// With an indirect call in the program the caller set of any
	// function is unknowable, so Param resolution would be built from
	// an incomplete union; leave incoming nil and keep Param leaves.
	propagate := !s.cg.HasIndirect
	if propagate {
		s.incoming = make(map[*disasm.Func]*[4][]*Expr, len(p.Funcs))
	}
	sccs := s.cg.SCCs()
	for ci := len(sccs) - 1; ci >= 0; ci-- {
		for _, n := range sccs[ci] {
			// Same-component call sites contribute the Rec marker
			// before any member is analysed, so mutual recursion is
			// visible no matter the within-component order.
			if propagate {
				for _, e := range n.Calls {
					if s.cg.SameSCC(n.Fn, e.Callee) {
						s.addIncoming(e.Callee, [4][]*Expr{{recLeaf}, {recLeaf}, {recLeaf}, {recLeaf}})
					}
				}
			}
		}
		for _, n := range sccs[ci] {
			b := newBuilder(n.Fn, s.conf, s.m)
			b.ipc = s
			byFn[n.Fn] = b.analyzeLoads()
			if !propagate {
				continue
			}
			for _, e := range n.Calls {
				if s.cg.SameSCC(n.Fn, e.Callee) {
					continue
				}
				var args [4][]*Expr
				for k := 0; k < 4; k++ {
					b.truncated = false
					args[k] = b.expandReg(isa.A0+isa.Reg(k), e.Site, 0, map[int]bool{})
				}
				s.addIncoming(e.Callee, args)
			}
		}
	}
	var out []*Load
	for _, fn := range p.Funcs {
		out = append(out, byFn[fn]...)
	}
	return out
}

// addIncoming merges per-argument patterns into fn's incoming set,
// deduplicating and capping at MaxPatterns alternatives per register.
func (s *Summaries) addIncoming(fn *disasm.Func, args [4][]*Expr) {
	inc := s.incoming[fn]
	if inc == nil {
		inc = &[4][]*Expr{}
		s.incoming[fn] = inc
	}
	for k := 0; k < 4; k++ {
		for _, e := range args[k] {
			if len(inc[k]) >= s.conf.MaxPatterns {
				break
			}
			dup := false
			for _, have := range inc[k] {
				if have.Equal(e) {
					dup = true
					break
				}
			}
			if !dup {
				inc[k] = append(inc[k], e)
			}
		}
	}
}

// resolveParam returns the caller-side patterns for argument register
// reg of the builder's function, or nil to keep the Param leaf. Only
// meaningful during phase 2, after incoming sets are populated; during
// summary computation (phase 1) it always returns nil so summaries stay
// expressed over the function's own parameters.
func (b *builder) resolveParam(reg isa.Reg) []*Expr {
	if b.ipc == nil || b.ipc.incoming == nil || b.sccMates != nil {
		return nil
	}
	inc := b.ipc.incoming[b.fn]
	if inc == nil {
		return nil
	}
	k := int(reg - isa.A0)
	if k < 0 || k >= 4 || len(inc[k]) == 0 {
		return nil
	}
	// Keep the substitution only if it says more than the bare leaf.
	for _, e := range inc[k] {
		if e.Kind != Unknown {
			return inc[k]
		}
	}
	return nil
}

// resolveRet replaces the result of the call that produced definition d
// with the callee's instantiated return summary, or returns nil to keep
// the Ret leaf (indirect call, syscall, unknown or uninformative
// callee). Within a summary computation, calls inside the function's
// own component yield the Rec marker so the fixpoint terminates.
func (b *builder) resolveRet(d dataflow.Def, reg isa.Reg, depth int, visiting map[int]bool) []*Expr {
	if b.ipc == nil || reg != isa.V0 || visiting[d.ID] {
		return nil
	}
	in := b.fn.Insts[d.Inst]
	if !in.IsCall() {
		return nil // syscall clobber: no callee at all
	}
	if _, ok := in.DirectJumpTarget(b.fn.PC(d.Inst)); !ok {
		return nil // indirect call (jalr/blx): no static callee
	}
	callee := b.ipc.cg.CalleeAt(b.fn, d.Inst)
	if callee == nil {
		return nil
	}
	if b.sccMates != nil && b.sccMates[callee] {
		return []*Expr{recLeaf}
	}
	sum := b.ipc.summaryOf(callee)
	if sum == nil || len(sum.Ret) == 0 {
		return nil
	}
	if depth >= b.conf.MaxDepth {
		b.truncated = true
		return nil
	}
	// The callee summary speaks of its own parameters; instantiate them
	// with the argument patterns live at this call site, lazily per
	// register.
	visiting[d.ID] = true
	defer delete(visiting, d.ID)
	var args [4][]*Expr
	var done [4]bool
	getArg := func(k int) []*Expr {
		if !done[k] {
			done[k] = true
			args[k] = b.expandReg(isa.A0+isa.Reg(k), d.Inst, depth+1, visiting)
		}
		return args[k]
	}
	var out []*Expr
	for _, rp := range sum.Ret {
		for _, e := range b.instantiate(rp, getArg) {
			if len(out) >= b.conf.MaxPatterns {
				b.truncated = true
				return out
			}
			out = append(out, e)
		}
	}
	return out
}

// instantiate rewrites one callee-side pattern into caller terms:
// Param leaves become the call-site argument patterns (cross products
// capped at MaxPatterns), the callee's dead frame (sp) and any leaf
// that only meant something inside the callee (an unresolved nested
// Ret) become Unknown, while gp, constants, dereferences, and the Rec
// marker survive unchanged.
func (b *builder) instantiate(e *Expr, getArg func(int) []*Expr) []*Expr {
	switch e.Kind {
	case Const, GP, Unknown:
		return []*Expr{e}
	case SP:
		return []*Expr{unknownLeaf}
	case Ret:
		return []*Expr{unknownLeaf}
	case Param:
		if k := int(e.Reg - isa.A0); k >= 0 && k < 4 {
			if alts := getArg(k); len(alts) > 0 {
				return alts
			}
		}
		return []*Expr{unknownLeaf}
	case Rec:
		if e.L == nil {
			return []*Expr{e}
		}
		var out []*Expr
		for _, l := range b.instantiate(e.L, getArg) {
			out = append(out, &Expr{Kind: Rec, L: l})
		}
		return b.cap(out)
	case Deref:
		var out []*Expr
		for _, l := range b.instantiate(e.L, getArg) {
			out = append(out, NewDeref(l))
		}
		return b.cap(out)
	}
	var out []*Expr
	ls := b.instantiate(e.L, getArg)
	rs := b.instantiate(e.R, getArg)
	for _, l := range ls {
		for _, r := range rs {
			out = append(out, binary(e.Kind, l, r))
		}
	}
	return b.cap(out)
}

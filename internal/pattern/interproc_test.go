package pattern

import (
	"testing"

	"delinq/internal/asm"
	"delinq/internal/disasm"
	"delinq/internal/isa"
	"delinq/internal/minic"
)

// assembleProg assembles src into a disassembled program.
func assembleProg(t *testing.T, src string) *disasm.Program {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// programLoads analyses a whole assembled program in the given mode.
func programLoads(t *testing.T, src string, inter bool) []*Load {
	t.Helper()
	conf := DefaultConfig()
	conf.Interprocedural = inter
	return AnalyzeProgram(assembleProg(t, src), conf)
}

// fnLoad returns the single load in function fn writing rt.
func fnLoad(t *testing.T, loads []*Load, fn string, rt isa.Reg) *Load {
	t.Helper()
	for _, l := range loads {
		if l.Func.Name == fn && l.Inst.IsLoad() && l.Inst.Rt == rt {
			return l
		}
	}
	t.Fatalf("no load into %v in %q", rt, fn)
	return nil
}

// A helper that dereferences its argument; main then dereferences the
// returned pointer. Intraprocedurally the final load's base is an
// opaque ret:v0; interprocedurally the callee's summary ((a0+8)) is
// instantiated with main's argument (the global g), giving two
// dereference levels where the flat analysis saw none.
const retChainSrc = `
	.data
g:	.word 0
	.text
	.func next, frame=0
next:
	lw $v0, 8($a0)
	jr $ra
	.endfunc
	.func main, frame=0
main:
	la $a0, g
	jal next
	lw $t0, 4($v0)
	jr $ra
	.endfunc
`

func TestRetLeafIntraStaysOpaque(t *testing.T) {
	l := fnLoad(t, programLoads(t, retChainSrc, false), "main", isa.T0)
	if len(l.Patterns) != 1 {
		t.Fatalf("patterns = %v", l.Patterns)
	}
	p := l.Patterns[0]
	if p.CountRet() != 1 || p.MaxDeref() != 0 {
		t.Errorf("intra pattern = %q, want a bare ret leaf", p)
	}
}

func TestRetLeafResolvedAcrossCall(t *testing.T) {
	l := fnLoad(t, programLoads(t, retChainSrc, true), "main", isa.T0)
	if len(l.Patterns) != 1 {
		t.Fatalf("patterns = %v", l.Patterns)
	}
	p := l.Patterns[0]
	if p.CountRet() != 0 {
		t.Errorf("ret leaf survived: %q", p)
	}
	if p.MaxDeref() != 1 {
		t.Errorf("deref = %d in %q, want 1 (callee load made visible)", p.MaxDeref(), p)
	}
	if p.CountGP() != 1 {
		t.Errorf("argument did not reach the summary: %q", p)
	}
}

// The callee's own load address should gain the caller's argument
// pattern: helper dereferences a0, and every caller passes a global
// pointer loaded from gp, so the param leaf resolves to a deref chain.
const paramChainSrc = `
	.data
head:	.word 0
	.text
	.func walk, frame=0
walk:
	lw $t0, 12($a0)
	jr $ra
	.endfunc
	.func main, frame=0
main:
	lw $a0, head
	jal walk
	jr $ra
	.endfunc
`

func TestParamLeafResolvedFromCallers(t *testing.T) {
	intra := fnLoad(t, programLoads(t, paramChainSrc, false), "walk", isa.T0)
	if p := intra.Patterns[0]; p.CountParam() != 1 || p.MaxDeref() != 0 {
		t.Fatalf("intra pattern = %q, want param:a0+12", p)
	}
	inter := fnLoad(t, programLoads(t, paramChainSrc, true), "walk", isa.T0)
	if len(inter.Patterns) != 1 {
		t.Fatalf("patterns = %v", inter.Patterns)
	}
	p := inter.Patterns[0]
	if p.CountParam() != 0 {
		t.Errorf("param leaf survived: %q", p)
	}
	if p.MaxDeref() != 1 || p.CountGP() != 1 {
		t.Errorf("caller argument not propagated: %q", p)
	}
}

// With two callers the callee's incoming set is the union of both
// argument patterns.
const twoCallerSrc = `
	.data
a:	.word 0
b:	.word 0
	.text
	.func get, frame=0
get:
	lw $v0, 0($a0)
	jr $ra
	.endfunc
	.func main, frame=0
main:
	lw $a0, a
	jal get
	la $a0, b
	jal get
	jr $ra
	.endfunc
`

func TestParamUnionOverCallSites(t *testing.T) {
	l := fnLoad(t, programLoads(t, twoCallerSrc, true), "get", isa.V0)
	if len(l.Patterns) != 2 {
		t.Fatalf("want both call-site alternatives, got %v", l.Patterns)
	}
	derefs := map[int]bool{}
	for _, p := range l.Patterns {
		derefs[p.MaxDeref()] = true
	}
	if !derefs[0] || !derefs[1] {
		t.Errorf("want deref {0,1} alternatives, got %v", l.Patterns)
	}
}

// An indirect call anywhere in the program makes caller sets
// unknowable, so param leaves must stay opaque.
func TestIndirectCallDisablesParamPropagation(t *testing.T) {
	l := fnLoad(t, programLoads(t, `
	.data
head:	.word 0
	.text
	.func walk, frame=0
walk:
	lw $t0, 12($a0)
	jr $ra
	.endfunc
	.func main, frame=0
main:
	lw $a0, head
	jal walk
	jalr $ra, $t9
	jr $ra
	.endfunc
`, true), "walk", isa.T0)
	if p := l.Patterns[0]; p.CountParam() != 1 {
		t.Errorf("param resolved despite indirect call: %q", p)
	}
}

// Recursive helpers terminate via the Rec marker instead of diverging.
func TestRecursiveCalleeCollapsesToRec(t *testing.T) {
	loads := programLoads(t, `
	.func rec, frame=0
rec:
	lw $a0, 0($a0)
	jal rec
	jr $ra
	.endfunc
	.func main, frame=0
main:
	jal rec
	lw $t0, 0($v0)
	jr $ra
	.endfunc
`, true)
	l := fnLoad(t, loads, "main", isa.T0)
	for _, p := range l.Patterns {
		if p.CountRet() != 0 {
			// rec's summary is pure unknown/rec, keeping the ret leaf is
			// also acceptable; just make sure the analysis finished.
			return
		}
	}
}

// Mutual recursion must not deadlock or blow the budget either.
func TestMutualRecursionTerminates(t *testing.T) {
	loads := programLoads(t, `
	.func even, frame=0
even:
	lw $v0, 0($a0)
	jal odd
	jr $ra
	.endfunc
	.func odd, frame=0
odd:
	jal even
	jr $ra
	.endfunc
	.func main, frame=0
main:
	jal even
	lw $t0, 4($v0)
	jr $ra
	.endfunc
`, true)
	if len(loads) == 0 {
		t.Fatal("no loads analysed")
	}
}

// Interprocedural off must match AnalyzeFunc output exactly — the
// default pipeline is byte-identical to the flat per-function loop.
func TestIntraModeUnchanged(t *testing.T) {
	p := assembleProg(t, retChainSrc)
	flat := AnalyzeProgram(p, DefaultConfig())
	var manual []*Load
	for _, fn := range p.Funcs {
		manual = append(manual, AnalyzeFunc(fn, DefaultConfig())...)
	}
	if len(flat) != len(manual) {
		t.Fatalf("load count %d != %d", len(flat), len(manual))
	}
	for i := range flat {
		if len(flat[i].Patterns) != len(manual[i].Patterns) {
			t.Fatalf("load %d: pattern counts differ", i)
		}
		for j := range flat[i].Patterns {
			if flat[i].Patterns[j].Key() != manual[i].Patterns[j].Key() {
				t.Errorf("load %d pattern %d: %q != %q",
					i, j, flat[i].Patterns[j], manual[i].Patterns[j])
			}
		}
	}
}

// compileProgramLoads compiles mini-C and analyses the whole program.
func compileProgramLoads(t *testing.T, src string, optimize, inter bool) []*Load {
	t.Helper()
	asmText, err := minic.Compile(src, minic.Options{Optimize: optimize})
	if err != nil {
		t.Fatal(err)
	}
	conf := DefaultConfig()
	conf.Interprocedural = inter
	return AnalyzeProgram(assembleProg(t, asmText), conf)
}

// A linked-list walk where the pointer chase crosses a helper call:
// interprocedurally the loads inside the helper see the recurrent list
// pointer from the caller.
const listHelperSrc = `
struct node { int key; struct node *next; };
struct node pool[64];
struct node *head;

int keyof(struct node *p) { return p->key; }

int main() {
	struct node *p;
	int i;
	int sum = 0;
	for (i = 0; i < 63; i++) {
		pool[i].next = &pool[i+1];
		pool[i].key = i;
	}
	pool[63].next = 0;
	head = &pool[0];
	p = head;
	while (p) {
		sum = sum + keyof(p);
		p = p->next;
	}
	return sum & 255;
}
`

func TestMiniCHelperLoadGainsContext(t *testing.T) {
	intra := compileProgramLoads(t, listHelperSrc, true, false)
	inter := compileProgramLoads(t, listHelperSrc, true, true)
	var intraKey, interKey *Load
	for _, l := range intra {
		if l.Func.Name == "keyof" && l.Inst.IsLoad() {
			intraKey = l
			break
		}
	}
	for _, l := range inter {
		if l.Func.Name == "keyof" && l.Inst.IsLoad() {
			interKey = l
			break
		}
	}
	if intraKey == nil || interKey == nil {
		t.Fatal("keyof load not found in both modes")
	}
	intraMax, interMax := 0, 0
	for _, p := range intraKey.Patterns {
		if d := p.MaxDeref(); d > intraMax {
			intraMax = d
		}
	}
	for _, p := range interKey.Patterns {
		if d := p.MaxDeref(); d > interMax {
			interMax = d
		}
	}
	if interMax <= intraMax {
		t.Errorf("inter deref %d not deeper than intra %d; intra=%v inter=%v",
			interMax, intraMax, intraKey.Patterns, interKey.Patterns)
	}
}

package pattern

import (
	"context"

	"delinq/internal/cfg"
	"delinq/internal/dataflow"
	"delinq/internal/disasm"
	"delinq/internal/isa"
	"delinq/internal/isa/mips"
)

// Config bounds pattern expansion, keeping the analysis "largely local"
// as the paper requires for acceptable compile-time cost.
type Config struct {
	// MaxPatterns caps the alternatives kept per load (default 8).
	MaxPatterns int
	// MaxNodes caps a single pattern's size (default 64).
	MaxNodes int
	// MaxDepth caps substitution depth (default 16).
	MaxDepth int
	// Interprocedural resolves call boundaries instead of stopping at
	// them: Ret leaves are replaced by the callee's return-value
	// summary (instantiated with the argument patterns at the call
	// site) and Param leaves by the union of the argument patterns
	// arriving from the function's callers. The same MaxPatterns/
	// MaxNodes/MaxDepth budgets bound the extra expansion. Off by
	// default, which reproduces the paper's "largely local" analysis
	// exactly.
	Interprocedural bool
}

// DefaultConfig returns the bounds used throughout the evaluation.
func DefaultConfig() Config {
	return Config{MaxPatterns: 8, MaxNodes: 64, MaxDepth: 16}
}

func (c Config) withDefaults() Config {
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 8
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 64
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 16
	}
	return c
}

// Load is one analysed load instruction with its address patterns.
type Load struct {
	Func      *disasm.Func
	Index     int
	PC        uint32
	Inst      isa.Inst
	Patterns  []*Expr
	Truncated bool
}

// AnalyzeProgram builds address patterns for every load in the program.
// With conf.Interprocedural set it first computes per-function summaries
// over the call graph (see ComputeSummaries) and resolves Ret and Param
// leaves through them; the returned loads appear in the same order as
// the intraprocedural analysis either way.
func AnalyzeProgram(p *disasm.Program, conf Config) []*Load {
	loads, _ := AnalyzeProgramCtx(context.Background(), p, conf)
	return loads
}

// AnalyzeProgramCtx is AnalyzeProgram under a context: cancellation is
// checked between functions (and between the two interprocedural
// phases), so a deadline stops a pathological analysis at the next
// function boundary rather than after the whole program.
func AnalyzeProgramCtx(ctx context.Context, p *disasm.Program, conf Config) ([]*Load, error) {
	m, err := isa.ByName(p.Image.ISAName())
	if err != nil {
		return nil, err
	}
	if conf.Interprocedural {
		conf = conf.withDefaults()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := ComputeSummaries(p, conf)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return s.analyzeProgram(p), nil
	}
	var out []*Load
	for _, fn := range p.Funcs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out = append(out, analyzeFuncMachine(fn, conf, m)...)
	}
	return out, nil
}

// UnknownLoads is the analysis of last resort: every load in the
// program with the single pattern "?" and Truncated set. The graceful-
// degradation path uses it when pattern analysis fails even at reduced
// budgets, so downstream classification still sees every load (and
// classifies it Unknown) instead of the benchmark vanishing.
func UnknownLoads(p *disasm.Program) []*Load {
	var out []*Load
	for _, fn := range p.Funcs {
		for i, in := range fn.Insts {
			if !in.IsLoad() {
				continue
			}
			out = append(out, &Load{
				Func: fn, Index: i, PC: fn.PC(i), Inst: in,
				Patterns:  []*Expr{unknownLeaf},
				Truncated: true,
			})
		}
	}
	return out
}

// AnalyzeFunc builds address patterns for every load in one function,
// intraprocedurally (call boundaries stay opaque Param/Ret leaves),
// under the MIPS machine description.
func AnalyzeFunc(fn *disasm.Func, conf Config) []*Load {
	return analyzeFuncMachine(fn, conf, mips.M)
}

func analyzeFuncMachine(fn *disasm.Func, conf Config, m isa.Machine) []*Load {
	conf = conf.withDefaults()
	b := newBuilder(fn, conf, m)
	return b.analyzeLoads()
}

// newBuilder constructs a pattern builder over fn's dataflow facts,
// with register roles and the calling convention taken from m.
func newBuilder(fn *disasm.Func, conf Config, m isa.Machine) *builder {
	g := cfg.Build(fn)
	b := &builder{
		fn:    fn,
		conf:  conf,
		m:     m,
		df:    dataflow.AnalyzeMachine(g, m),
		slots: map[int32]int8{},
		zero:  m.Zero(),
		sp:    m.SP(),
		fp:    m.FP(),
	}
	b.gp, b.hasGP = m.GP()
	for _, r := range m.ArgRegs() {
		b.argRegs |= 1 << r
	}
	for _, r := range m.RetRegs() {
		b.retRegs |= 1 << r
	}
	return b
}

// analyzeLoads builds the address patterns of every load in the
// builder's function.
func (b *builder) analyzeLoads() []*Load {
	var out []*Load
	for i, in := range b.fn.Insts {
		if !in.IsLoad() {
			continue
		}
		ld := &Load{Func: b.fn, Index: i, PC: b.fn.PC(i), Inst: in}
		b.truncated = false
		bases := b.expandReg(in.Rs, i, 0, map[int]bool{})
		seen := map[string]bool{}
		for _, base := range bases {
			p := binary(Add, base, NewConst(in.MemOffset()))
			if k := p.Key(); !seen[k] {
				seen[k] = true
				ld.Patterns = append(ld.Patterns, p)
			}
		}
		ld.Truncated = b.truncated
		out = append(out, ld)
	}
	return out
}

type builder struct {
	fn        *disasm.Func
	conf      Config
	m         isa.Machine
	df        *dataflow.Result
	truncated bool
	// Register roles, resolved once from the machine description. gp is
	// meaningful only when hasGP is set; argRegs/retRegs are bitmasks
	// over the 32 shared register indices.
	zero, sp, fp, gp isa.Reg
	hasGP            bool
	argRegs, retRegs uint32
	// ipc, when non-nil, enables interprocedural resolution of Ret and
	// Param leaves through the program's function summaries.
	ipc *Summaries
	// sccMates, non-nil only while ipc computes the summary of fn
	// itself, maps callees in fn's own strongly connected component
	// (including fn) to the recurrence marker instead of recursing.
	sccMates map[*disasm.Func]bool
	// slots memoises stack-slot recurrence queries: 1 yes, 2 no.
	slots map[int32]int8
	// storeSlots maps a stack-slot offset to the instructions that
	// store to it, resolved through address expansion (compiled code
	// computes slot addresses in a temporary before storing).
	storeSlots map[int32][]int
	// slotQueryDepth is non-zero while a slotRecurrent query is
	// expanding stored values, suppressing nested recurrence checks.
	slotQueryDepth int
}

// ensureStoreSlots builds the slot→stores index once per function.
func (b *builder) ensureStoreSlots() {
	if b.storeSlots != nil {
		return
	}
	b.storeSlots = map[int32][]int{}
	b.slotQueryDepth++
	defer func() { b.slotQueryDepth-- }()
	saved := b.truncated
	defer func() { b.truncated = saved }()
	for i, in := range b.fn.Insts {
		if !in.IsStore() || in.IsFPMem() {
			continue
		}
		off := in.MemOffset()
		if in.Rs == b.sp || in.Rs == b.fp {
			b.storeSlots[off] = append(b.storeSlots[off], i)
			continue
		}
		for _, e := range b.expandReg(in.Rs, i, b.conf.MaxDepth/2, map[int]bool{}) {
			if o, ok := spSlot(binary(Add, e, NewConst(off))); ok {
				b.storeSlots[o] = append(b.storeSlots[o], i)
				break
			}
		}
	}
}

func (b *builder) cap(list []*Expr) []*Expr {
	if len(list) > b.conf.MaxPatterns {
		b.truncated = true
		return list[:b.conf.MaxPatterns]
	}
	return list
}

// expandReg returns the possible symbolic values of reg immediately
// before instruction `at` executes. visiting carries the definition IDs
// on the current substitution path for register-recurrence detection.
func (b *builder) expandReg(reg isa.Reg, at, depth int, visiting map[int]bool) []*Expr {
	switch {
	case reg == b.zero:
		return []*Expr{zeroConst}
	case b.hasGP && reg == b.gp:
		return []*Expr{gpLeaf}
	case reg == b.sp || reg == b.fp:
		return []*Expr{spLeaf}
	}
	if depth >= b.conf.MaxDepth {
		b.truncated = true
		return []*Expr{unknownLeaf}
	}
	defs := b.df.ReachingAt(at, reg)
	if len(defs) == 0 {
		return []*Expr{unknownLeaf}
	}
	var out []*Expr
	seen := map[string]bool{}
	add := func(e *Expr) {
		if e.Size() > b.conf.MaxNodes {
			b.truncated = true
			e = unknownLeaf
		}
		if k := e.Key(); !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	for _, d := range defs {
		if len(out) >= b.conf.MaxPatterns {
			b.truncated = true
			break
		}
		switch d.Kind {
		case dataflow.DefEntry:
			if b.argRegs&(1<<reg) != 0 {
				if alts := b.resolveParam(reg); alts != nil {
					for _, e := range alts {
						add(e)
					}
				} else {
					add(&Expr{Kind: Param, Reg: reg})
				}
			} else {
				add(unknownLeaf)
			}
		case dataflow.DefCall:
			if b.retRegs&(1<<reg) != 0 {
				if alts := b.resolveRet(d, reg, depth, visiting); alts != nil {
					for _, e := range alts {
						add(e)
					}
				} else {
					add(&Expr{Kind: Ret, Reg: reg})
				}
			} else {
				add(unknownLeaf)
			}
		case dataflow.DefInst:
			if visiting[d.ID] {
				add(recLeaf)
				continue
			}
			visiting[d.ID] = true
			for _, e := range b.expandInst(d.Inst, reg, depth+1, visiting) {
				add(e)
			}
			delete(visiting, d.ID)
		}
	}
	if len(out) == 0 {
		out = []*Expr{unknownLeaf}
	}
	return b.cap(out)
}

// expandInst returns the symbolic values the defining instruction at
// index i produces in register target. Only the pre/post-indexed ARM
// memory ops define two registers; everywhere else target is implied
// by the opcode.
func (b *builder) expandInst(i int, target isa.Reg, depth int, visiting map[int]bool) []*Expr {
	in := b.fn.Insts[i]
	un := func(k Kind, opnd isa.Reg, rhs *Expr) []*Expr {
		var out []*Expr
		for _, l := range b.expandReg(opnd, i, depth, visiting) {
			out = append(out, binary(k, l, rhs))
		}
		return b.cap(out)
	}
	bin := func(k Kind, ra, rb isa.Reg) []*Expr {
		var out []*Expr
		ls := b.expandReg(ra, i, depth, visiting)
		rs := b.expandReg(rb, i, depth, visiting)
		for _, l := range ls {
			for _, r := range rs {
				out = append(out, binary(k, l, r))
			}
		}
		return b.cap(out)
	}

	// Writeback half of a pre/post-indexed access: the base register
	// advances by the immediate whichever indexing mode is in play.
	if in.WritesBack() && target == in.Rs {
		return un(Add, in.Rs, NewConst(in.Imm))
	}

	switch in.Op {
	case isa.ADDI, isa.ADDIU:
		return un(Add, in.Rs, NewConst(in.Imm))
	case isa.ORI:
		// In generated code ori is either constant synthesis (lui/ori)
		// or a bitmask; model it additively so constants fold.
		return un(Add, in.Rs, NewConst(in.Imm))
	case isa.LUI:
		return []*Expr{NewConst(in.Imm << 16)}
	case isa.ADD, isa.ADDU:
		if in.Rt == isa.Zero { // move idiom
			return b.expandReg(in.Rs, i, depth, visiting)
		}
		if in.Rs == isa.Zero {
			return b.expandReg(in.Rt, i, depth, visiting)
		}
		return bin(Add, in.Rs, in.Rt)
	case isa.SUB, isa.SUBU:
		return bin(Sub, in.Rs, in.Rt)
	case isa.MUL:
		return bin(Mul, in.Rs, in.Rt)
	case isa.SLL:
		return un(Shl, in.Rt, NewConst(in.Imm))
	case isa.SRL, isa.SRA:
		return un(Shr, in.Rt, NewConst(in.Imm))
	case isa.SLLV:
		return bin(Shl, in.Rt, in.Rs)
	case isa.SRLV, isa.SRAV:
		return bin(Shr, in.Rt, in.Rs)
	case isa.LW, isa.LB, isa.LBU, isa.LH, isa.LHU,
		isa.ALDR, isa.ALDRH, isa.ALDRSH, isa.ALDRB, isa.ALDRSB,
		isa.ALDRPRE, isa.ALDRPOST:
		var out []*Expr
		for _, base := range b.expandReg(in.Rs, i, depth, visiting) {
			addr := binary(Add, base, NewConst(in.MemOffset()))
			d := NewDeref(addr)
			// A load from a stack slot that feeds itself through a
			// store chain is an induction value: mark the recurrence.
			// Slot queries themselves must not recurse into this check.
			if off, ok := spSlot(addr); ok && b.slotQueryDepth == 0 &&
				b.slotRecurrent(off, map[int32]bool{}) {
				out = append(out, &Expr{Kind: Rec, L: d})
			} else {
				out = append(out, d)
			}
		}
		return b.cap(out)

	// ARM two-operand forms: Rd is both destination and left operand,
	// so its incoming value expands as the left subexpression.
	case isa.AMOV:
		return b.expandReg(in.Rs, i, depth, visiting)
	case isa.AMOVI:
		return []*Expr{NewConst(in.Imm)}
	case isa.AMOVW:
		return []*Expr{NewConst(in.Imm & 0xffff)}
	case isa.AMOVT:
		// movw/movt pairs materialise absolute addresses; fold the halves
		// back into one constant so global accesses stay classifiable.
		var out []*Expr
		for _, l := range b.expandReg(in.Rd, i, depth, visiting) {
			if l.Kind == Const {
				out = append(out, NewConst(l.Val&0xffff|in.Imm<<16))
			} else {
				out = append(out, binary(Add, l, NewConst(in.Imm<<16)))
			}
		}
		return b.cap(out)
	case isa.AADDI:
		return un(Add, in.Rd, NewConst(in.Imm))
	case isa.AORRI:
		// Like ori: constant synthesis or a bitmask; model additively.
		return un(Add, in.Rd, NewConst(in.Imm))
	case isa.AADD:
		return bin(Add, in.Rd, in.Rt)
	case isa.ASUB:
		return bin(Sub, in.Rd, in.Rt)
	case isa.ARSB:
		return bin(Sub, in.Rt, in.Rd)
	case isa.AMUL:
		return bin(Mul, in.Rd, in.Rt)
	case isa.ALSLI:
		return un(Shl, in.Rd, NewConst(in.Imm))
	case isa.ALSRI, isa.AASRI:
		return un(Shr, in.Rd, NewConst(in.Imm))
	case isa.ALSL:
		return bin(Shl, in.Rd, in.Rt)
	case isa.ALSR, isa.AASR:
		return bin(Shr, in.Rd, in.Rt)
	}
	return []*Expr{unknownLeaf}
}

// spSlot reports whether addr is sp+const and returns the offset.
func spSlot(addr *Expr) (int32, bool) {
	if addr.Kind == SP {
		return 0, true
	}
	if addr.Kind == Add && addr.L != nil && addr.L.Kind == SP &&
		addr.R != nil && addr.R.Kind == Const {
		return addr.R.Val, true
	}
	return 0, false
}

// slotRecurrent reports whether the stack slot at sp+off participates in
// a value cycle: some store to the slot computes its value (transitively,
// through other slots) from a load of the same slot. Unoptimised code
// keeps induction variables in such slots, so this is how H4 recurrences
// surface in -O0 binaries.
func (b *builder) slotRecurrent(off int32, visiting map[int32]bool) bool {
	if visiting[off] {
		return true
	}
	if v, ok := b.slots[off]; ok {
		return v == 1
	}
	b.ensureStoreSlots()
	visiting[off] = true
	defer delete(visiting, off)
	b.slotQueryDepth++
	defer func() { b.slotQueryDepth-- }()

	result := false
	for _, i := range b.storeSlots[off] {
		in := b.fn.Insts[i]
		// Expand the stored value (bounded) and look for loads of stack
		// slots among its leaves.
		saved := b.truncated
		exprs := b.expandReg(in.Rt, i, b.conf.MaxDepth/2, map[int]bool{})
		b.truncated = saved
		for _, e := range exprs {
			e.Walk(func(x *Expr) {
				if result || x.Kind != Deref {
					return
				}
				if o, ok := spSlot(x.L); ok {
					if o == off || b.slotRecurrent(o, visiting) {
						result = true
					}
				}
			})
			if result {
				break
			}
		}
		if result {
			break
		}
	}
	// Memoise only fully resolved queries (not ones cut by the visiting
	// set of an outer call).
	if len(visiting) == 1 {
		v := int8(2)
		if result {
			v = 1
		}
		b.slots[off] = v
	}
	return result
}

// Package pattern builds the paper's address patterns: symbolic
// expressions summarising the data-flow subgraph that computes the
// address operand of each load instruction (Section 5.1).
//
// The grammar is
//
//	AP → AP(AP) | AP*AP | AP+AP | AP−AP | AP<<AP | AP>>AP | const | BR
//	BR → gp | sp | reg_param | reg_ret
//
// where parentheses denote memory dereferencing. Intermediate registers
// are eliminated by substituting their reaching definitions; a load can
// have several address patterns when several definitions reach it along
// different control paths, and a definition that (transitively) depends
// on itself marks the pattern as recurrent.
package pattern

import (
	"fmt"
	"strings"

	"delinq/internal/isa"
)

// Kind identifies an expression node.
type Kind int

const (
	Const   Kind = iota // integer literal
	GP                  // the global pointer basic register
	SP                  // the stack pointer (and frame pointer) basic register
	Param               // an argument register live-in at function entry
	Ret                 // a value produced by a function call ($v0/$v1)
	Unknown             // a value outside the grammar (entry temp, logic op, …)
	Add
	Sub
	Mul
	Shl
	Shr
	Deref // memory dereference of the single child L
	Rec   // recurrence marker: the sub-expression depends on itself
)

// Expr is one address-pattern node. Leaves use Val (Const) or Reg
// (Param/Ret); interior nodes use L and R (Deref and Rec use L only).
type Expr struct {
	Kind Kind
	Val  int32
	Reg  isa.Reg
	L, R *Expr
}

// Shared leaves.
var (
	gpLeaf      = &Expr{Kind: GP}
	spLeaf      = &Expr{Kind: SP}
	unknownLeaf = &Expr{Kind: Unknown}
	recLeaf     = &Expr{Kind: Rec}
	zeroConst   = &Expr{Kind: Const, Val: 0}
)

// NewConst returns a constant leaf.
func NewConst(v int32) *Expr {
	if v == 0 {
		return zeroConst
	}
	return &Expr{Kind: Const, Val: v}
}

func binary(k Kind, l, r *Expr) *Expr {
	// Constant folding keeps patterns canonical: lui/ori pairs become a
	// single const, and x+0 collapses.
	if l.Kind == Const && r.Kind == Const {
		switch k {
		case Add:
			return NewConst(l.Val + r.Val)
		case Sub:
			return NewConst(l.Val - r.Val)
		case Mul:
			return NewConst(l.Val * r.Val)
		case Shl:
			return NewConst(l.Val << (uint(r.Val) & 31))
		case Shr:
			return NewConst(int32(uint32(l.Val) >> (uint(r.Val) & 31)))
		}
	}
	if k == Add {
		if l.Kind == Const && l.Val == 0 {
			return r
		}
		if r.Kind == Const && r.Val == 0 {
			return l
		}
		// Reassociate (x+c1)+c2 so chained displacements stay canonical.
		if r.Kind == Const && l.Kind == Add && l.R.Kind == Const {
			return binary(Add, l.L, NewConst(l.R.Val+r.Val))
		}
		if l.Kind == Const && r.Kind == Add && r.R.Kind == Const {
			return binary(Add, r.L, NewConst(r.R.Val+l.Val))
		}
	}
	if k == Sub && r.Kind == Const && r.Val == 0 {
		return l
	}
	return &Expr{Kind: k, L: l, R: r}
}

// NewDeref wraps e in a memory dereference.
func NewDeref(e *Expr) *Expr { return &Expr{Kind: Deref, L: e} }

// String renders the pattern in the paper's notation: dereferencing as
// parentheses, with the common "offset(base)" special case, e.g.
// "45(sp)+30" for the contents of sp+45 plus the constant 30.
func (e *Expr) String() string {
	switch e.Kind {
	case Const:
		return fmt.Sprint(e.Val)
	case GP:
		return "gp"
	case SP:
		return "sp"
	case Param:
		return "param:" + isa.RegName(e.Reg)[1:]
	case Ret:
		return "ret:" + isa.RegName(e.Reg)[1:]
	case Unknown:
		return "?"
	case Rec:
		if e.L != nil {
			return "rec:" + e.L.String()
		}
		return "rec"
	case Deref:
		if e.L.Kind == Add && e.L.R.Kind == Const {
			return fmt.Sprintf("%d(%s)", e.L.R.Val, e.L.L)
		}
		if e.L.Kind == Add && e.L.L.Kind == Const {
			return fmt.Sprintf("%d(%s)", e.L.L.Val, e.L.R)
		}
		return "(" + e.L.String() + ")"
	case Add:
		return e.L.String() + "+" + e.R.String()
	case Sub:
		return e.L.String() + "-" + e.R.String()
	case Mul:
		return wrap(e.L) + "*" + wrap(e.R)
	case Shl:
		return wrap(e.L) + "<<" + wrap(e.R)
	case Shr:
		return wrap(e.L) + ">>" + wrap(e.R)
	}
	return "?"
}

func wrap(e *Expr) string {
	switch e.Kind {
	case Add, Sub, Shl, Shr:
		return "[" + e.String() + "]"
	}
	return e.String()
}

// Walk visits every node of the expression tree.
func (e *Expr) Walk(f func(*Expr)) {
	f(e)
	if e.L != nil {
		e.L.Walk(f)
	}
	if e.R != nil {
		e.R.Walk(f)
	}
}

// CountSP returns the number of occurrences of the stack pointer.
func (e *Expr) CountSP() int { return e.count(SP) }

// CountGP returns the number of occurrences of the global pointer.
func (e *Expr) CountGP() int { return e.count(GP) }

// CountParam returns occurrences of argument-register leaves.
func (e *Expr) CountParam() int { return e.count(Param) }

// CountRet returns occurrences of call-result leaves.
func (e *Expr) CountRet() int { return e.count(Ret) }

func (e *Expr) count(k Kind) int {
	n := 0
	e.Walk(func(x *Expr) {
		if x.Kind == k {
			n++
		}
	})
	return n
}

// HasMulOrShift reports whether the address computation contains a
// multiplication or shift (decision criterion H2).
func (e *Expr) HasMulOrShift() bool {
	found := false
	e.Walk(func(x *Expr) {
		if x.Kind == Mul || x.Kind == Shl || x.Kind == Shr {
			found = true
		}
	})
	return found
}

// MaxDeref returns the maximum dereference nesting depth (criterion H3).
func (e *Expr) MaxDeref() int {
	switch e.Kind {
	case Deref:
		return 1 + e.L.MaxDeref()
	case Const, GP, SP, Param, Ret, Unknown:
		return 0
	}
	d := 0
	if e.L != nil {
		d = e.L.MaxDeref()
	}
	if e.R != nil {
		if r := e.R.MaxDeref(); r > d {
			d = r
		}
	}
	return d
}

// HasRecurrence reports whether the pattern contains a recurrence marker
// (criterion H4).
func (e *Expr) HasRecurrence() bool {
	found := false
	e.Walk(func(x *Expr) {
		if x.Kind == Rec {
			found = true
		}
	})
	return found
}

// Size returns the node count, used to bound expansion.
func (e *Expr) Size() int {
	n := 0
	e.Walk(func(*Expr) { n++ })
	return n
}

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil || e.Kind != o.Kind || e.Val != o.Val || e.Reg != o.Reg {
		return false
	}
	if (e.L == nil) != (o.L == nil) || (e.R == nil) != (o.R == nil) {
		return false
	}
	if e.L != nil && !e.L.Equal(o.L) {
		return false
	}
	if e.R != nil && !e.R.Equal(o.R) {
		return false
	}
	return true
}

// Key returns a canonical string key for deduplication.
func (e *Expr) Key() string {
	var sb strings.Builder
	e.key(&sb)
	return sb.String()
}

func (e *Expr) key(sb *strings.Builder) {
	fmt.Fprintf(sb, "%d:%d:%d", e.Kind, e.Val, e.Reg)
	if e.L != nil {
		sb.WriteByte('(')
		e.L.key(sb)
		if e.R != nil {
			sb.WriteByte(',')
			e.R.key(sb)
		}
		sb.WriteByte(')')
	}
}

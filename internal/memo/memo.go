// Package memo provides a keyed, singleflight-style result cache: the
// concurrency backbone of the experiment engine. Concurrent callers of
// Do with the same key share one in-flight computation — the first
// caller runs it, later callers block until it finishes — so an
// expensive simulation is never duplicated and never serialised behind
// an unrelated one.
package memo

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is delivered to every caller of a computation that
// panicked: the memo layer recovers the panic so joined waiters are
// released instead of deadlocking on a done channel that would never
// close, and so one crashed computation degrades gracefully rather than
// killing the worker pool above it. Like any other error it is not
// retained; the next Do for the key recomputes.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine, for diagnostics
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("memo: computation panicked: %v", e.Value)
}

// Unwrap exposes the panic value to errors.Is/As when it was itself an
// error (e.g. a deliberate fault-injection crash).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// protect runs fn, converting a panic into a *PanicError.
func protect[V any](fn func() (V, error)) (v V, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero V
			v, err = zero, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Cache memoises the results of keyed computations.
//
// Semantics:
//
//   - Successful results are retained until Reset; later calls return
//     them immediately (a "hit").
//   - Errors are delivered to every caller waiting on the flight that
//     produced them but are not retained: the next Do for that key
//     recomputes.
//   - Reset detaches in-flight computations. Their callers still receive
//     the eventual result, but the result is not retained, and a Do
//     issued after the Reset starts a fresh computation even for the
//     same key.
type Cache[V any] struct {
	mu       sync.Mutex
	entries  map[string]*entry[V]
	hits     uint64
	misses   uint64
	joined   uint64
	errors   uint64
	inflight int
}

type entry[V any] struct {
	done chan struct{} // closed when the computation finishes
	val  V
	err  error
	// complete is guarded by Cache.mu; val and err are written by the
	// computing goroutine before complete is set (and before done is
	// closed), so both the hit path and joined waiters observe them.
	complete bool
}

// Stats is a snapshot of the cache's activity counters.
type Stats struct {
	// Hits counts calls answered from a completed entry.
	Hits uint64
	// Misses counts computations started: for a given key set, "misses
	// equals distinct keys" is the exactly-once property.
	Misses uint64
	// Joined counts callers that waited on another caller's in-flight
	// computation instead of starting their own.
	Joined uint64
	// Errors counts computations that finished with an error (and were
	// therefore not retained).
	Errors uint64
	// Entries is the number of completed results currently retained.
	Entries int
	// Inflight is the number of computations currently running.
	Inflight int
}

// Do returns the memoised value for key, computing it with fn if
// needed. Concurrent calls with the same key share one fn invocation.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[string]*entry[V]{}
	}
	if e, ok := c.entries[key]; ok {
		if e.complete {
			c.hits++
			c.mu.Unlock()
			return e.val, e.err
		}
		c.joined++
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &entry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.inflight++
	c.mu.Unlock()

	e.val, e.err = protect(fn)

	c.mu.Lock()
	e.complete = true
	c.inflight--
	if e.err != nil {
		c.errors++
	}
	// Drop failed computations so the next Do retries — but only if this
	// entry is still the one registered for the key: a Reset during the
	// computation detaches it, and a newer flight may own the slot now.
	if e.err != nil && c.entries[key] == e {
		delete(c.entries, key)
	}
	c.mu.Unlock()
	close(e.done)
	return e.val, e.err
}

// Get returns the completed value for key without computing, and
// whether one is retained.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.complete && e.err == nil {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Reset drops every retained result and zeroes the activity counters
// (except Inflight, which tracks live computations). In-flight
// computations are detached: they complete and answer their waiters,
// but their results are not retained.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	c.entries = map[string]*entry[V]{}
	c.hits, c.misses, c.joined, c.errors = 0, 0, 0, 0
	c.mu.Unlock()
}

// Stats returns a snapshot of the activity counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		if e.complete {
			n++
		}
	}
	return Stats{
		Hits:     c.hits,
		Misses:   c.misses,
		Joined:   c.joined,
		Errors:   c.errors,
		Entries:  n,
		Inflight: c.inflight,
	}
}

package memo

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMemoises(t *testing.T) {
	var c Cache[int]
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", fn)
		if err != nil || v != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("Get(absent) succeeded")
	}
}

// TestSingleflight launches many goroutines on one key while the first
// computation is deliberately held open: exactly one fn invocation, the
// rest join it.
func TestSingleflight(t *testing.T) {
	var c Cache[int]
	const n = 16
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() (int, error) {
		calls.Add(1)
		close(started)
		<-release
		return 7, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, _ := c.Do("k", fn); v != 7 {
			t.Errorf("leader got %d", v)
		}
	}()
	<-started // the leader is inside fn; everyone else must join

	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("k", func() (int, error) {
				t.Error("second computation started")
				return 0, nil
			})
			if err != nil || v != 7 {
				t.Errorf("joiner got %v, %v", v, err)
			}
		}()
	}
	// Wait until every joiner is accounted for, then let the flight finish.
	for c.Stats().Joined != n {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Joined != n || st.Inflight != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestErrorsNotRetained: a failed computation is delivered but the next
// Do retries.
func TestErrorsNotRetained(t *testing.T) {
	var c Cache[int]
	boom := errors.New("boom")
	calls := 0
	fn := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 9, nil
	}
	if _, err := c.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v", err)
	}
	if v, err := c.Do("k", fn); err != nil || v != 9 {
		t.Fatalf("retry = %v, %v", v, err)
	}
	st := c.Stats()
	if st.Errors != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestResetDetachesInflight: a Reset issued while a computation is
// running leaves that computation to answer its own callers, while a
// post-Reset Do for the same key starts fresh.
func TestResetDetachesInflight(t *testing.T) {
	var c Cache[string]
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan string)
	go func() {
		v, _ := c.Do("k", func() (string, error) {
			close(started)
			<-release
			return "old", nil
		})
		done <- v
	}()
	<-started
	c.Reset()

	// The detached flight is no longer visible: a new Do recomputes.
	recompute := make(chan string)
	go func() {
		v, _ := c.Do("k", func() (string, error) { return "new", nil })
		recompute <- v
	}()
	if v := <-recompute; v != "new" {
		t.Errorf("post-reset Do = %q, want \"new\"", v)
	}
	close(release)
	if v := <-done; v != "old" {
		t.Errorf("detached caller got %q, want \"old\"", v)
	}
	// Only the post-reset result is retained.
	if v, ok := c.Get("k"); !ok || v != "new" {
		t.Errorf("retained = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Inflight != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines over a
// small key space under the race detector.
func TestConcurrentMixedKeys(t *testing.T) {
	var c Cache[int]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%5)
				want := i % 5
				v, err := c.Do(key, func() (int, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("Do(%s) = %v, %v", key, v, err)
					return
				}
				if g == 0 && i%50 == 0 {
					c.Reset()
				}
			}
		}(g)
	}
	wg.Wait()
}

package memo

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestPanicBecomesError: a panicking computation must not kill the
// process or deadlock joined waiters; every caller gets a *PanicError
// and the failed key is recomputable.
func TestPanicBecomesError(t *testing.T) {
	var c Cache[int]
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = c.Do("k", func() (int, error) {
			close(started)
			<-release
			panic("deliberate")
		})
	}()
	<-started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do("k", func() (int, error) { return 0, nil })
		}(i)
	}
	// Give the joiners a moment to attach, then let the panic fly.
	for {
		c.mu.Lock()
		joined := c.joined
		c.mu.Unlock()
		if joined == 3 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("caller %d: err = %v, want *PanicError", i, err)
		}
		if pe.Value != "deliberate" || len(pe.Stack) == 0 {
			t.Errorf("caller %d: PanicError = %+v", i, pe)
		}
	}

	// The error is not retained: the key recomputes cleanly.
	v, err := c.Do("k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Errorf("recompute after panic = %d, %v", v, err)
	}
	if st := c.Stats(); st.Inflight != 0 {
		t.Errorf("inflight = %d after panic", st.Inflight)
	}
}

// TestPanicErrorUnwrap: an error panic value is reachable through
// errors.Is/As; a non-error value unwraps to nil.
func TestPanicErrorUnwrap(t *testing.T) {
	cause := errors.New("cause")
	var c Cache[int]
	_, err := c.Do("k", func() (int, error) { panic(cause) })
	if !errors.Is(err, cause) {
		t.Errorf("error panic value not reachable: %v", err)
	}
	pe := &PanicError{Value: 7}
	if pe.Unwrap() != nil {
		t.Error("non-error panic value unwrapped to non-nil")
	}
}

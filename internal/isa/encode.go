package isa

import "fmt"

// Binary instruction formats follow MIPS I conventions:
//
//	R-type:  op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)
//	I-type:  op(6) rs(5) rt(5) imm(16)
//	J-type:  op(6) index(26)
//	COP1:    op=0x11, sub-format in the rs field or fmt field
//
// MUL uses the MIPS32 SPECIAL2 encoding (op=0x1c funct=0x02).

const (
	opSpecial  = 0x00
	opRegimm   = 0x01
	opJ        = 0x02
	opJal      = 0x03
	opBeq      = 0x04
	opBne      = 0x05
	opBlez     = 0x06
	opBgtz     = 0x07
	opAddi     = 0x08
	opAddiu    = 0x09
	opSlti     = 0x0a
	opSltiu    = 0x0b
	opAndi     = 0x0c
	opOri      = 0x0d
	opXori     = 0x0e
	opLui      = 0x0f
	opCop1     = 0x11
	opSpecial2 = 0x1c
	opLb       = 0x20
	opLh       = 0x21
	opLw       = 0x23
	opLbu      = 0x24
	opLhu      = 0x25
	opSb       = 0x28
	opSh       = 0x29
	opSw       = 0x2b
	opLwc1     = 0x31
	opSwc1     = 0x39
)

const (
	fnSll     = 0x00
	fnSrl     = 0x02
	fnSra     = 0x03
	fnSllv    = 0x04
	fnSrlv    = 0x06
	fnSrav    = 0x07
	fnJr      = 0x08
	fnJalr    = 0x09
	fnSyscall = 0x0c
	fnMfhi    = 0x10
	fnMflo    = 0x12
	fnMult    = 0x18
	fnDiv     = 0x1a
	fnDivu    = 0x1b
	fnAdd     = 0x20
	fnAddu    = 0x21
	fnSub     = 0x22
	fnSubu    = 0x23
	fnAnd     = 0x24
	fnOr      = 0x25
	fnXor     = 0x26
	fnNor     = 0x27
	fnSlt     = 0x2a
	fnSltu    = 0x2b
)

// COP1 fmt and function codes.
const (
	c1Mfc1 = 0x00
	c1Mtc1 = 0x04
	c1Bc   = 0x08
	c1FmtS = 0x10
	c1FmtW = 0x14

	fpAdd   = 0x00
	fpSub   = 0x01
	fpMul   = 0x02
	fpDiv   = 0x03
	fpMov   = 0x06
	fpNeg   = 0x07
	fpCvtS  = 0x20 // cvt.s.w under fmt W
	fpCvtW  = 0x24 // cvt.w.s under fmt S
	fpCmpEq = 0x32
	fpCmpLt = 0x3c
	fpCmpLe = 0x3e
)

var rFunct = map[Op]uint32{
	SLL: fnSll, SRL: fnSrl, SRA: fnSra, SLLV: fnSllv, SRLV: fnSrlv, SRAV: fnSrav,
	JR: fnJr, JALR: fnJalr, SYSCALL: fnSyscall,
	MFHI: fnMfhi, MFLO: fnMflo, MULT: fnMult, DIV: fnDiv, DIVU: fnDivu,
	ADD: fnAdd, ADDU: fnAddu, SUB: fnSub, SUBU: fnSubu,
	AND: fnAnd, OR: fnOr, XOR: fnXor, NOR: fnNor, SLT: fnSlt, SLTU: fnSltu,
}

var functR = func() map[uint32]Op {
	m := make(map[uint32]Op, len(rFunct))
	for op, fn := range rFunct {
		m[fn] = op
	}
	return m
}()

var iOpcode = map[Op]uint32{
	BEQ: opBeq, BNE: opBne, BLEZ: opBlez, BGTZ: opBgtz,
	ADDI: opAddi, ADDIU: opAddiu, SLTI: opSlti, SLTIU: opSltiu,
	ANDI: opAndi, ORI: opOri, XORI: opXori, LUI: opLui,
	LB: opLb, LH: opLh, LW: opLw, LBU: opLbu, LHU: opLhu,
	SB: opSb, SH: opSh, SW: opSw, LWC1: opLwc1, SWC1: opSwc1,
}

var opcodeI = func() map[uint32]Op {
	m := make(map[uint32]Op, len(iOpcode))
	for op, code := range iOpcode {
		m[code] = op
	}
	return m
}()

var fpFunct = map[Op]uint32{
	ADDS: fpAdd, SUBS: fpSub, MULS: fpMul, DIVS: fpDiv,
	MOVS: fpMov, NEGS: fpNeg, CVTWS: fpCvtW,
	CEQS: fpCmpEq, CLTS: fpCmpLt, CLES: fpCmpLe,
}

var functFP = func() map[uint32]Op {
	m := make(map[uint32]Op, len(fpFunct))
	for op, fn := range fpFunct {
		m[fn] = op
	}
	return m
}()

func imm16(v int32) uint32 { return uint32(v) & 0xffff }

// Encode converts an instruction to its 32-bit machine word.
func Encode(i Inst) (uint32, error) {
	rd, rs, rt := uint32(i.Rd), uint32(i.Rs), uint32(i.Rt)
	switch i.Op {
	case NOP:
		return 0, nil
	case SLL, SRL, SRA:
		return rt<<16 | rd<<11 | (uint32(i.Imm)&0x1f)<<6 | rFunct[i.Op], nil
	case SLLV, SRLV, SRAV, ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU:
		return rs<<21 | rt<<16 | rd<<11 | rFunct[i.Op], nil
	case MULT, DIV, DIVU:
		return rs<<21 | rt<<16 | rFunct[i.Op], nil
	case MFHI, MFLO:
		return rd<<11 | rFunct[i.Op], nil
	case JR:
		return rs<<21 | fnJr, nil
	case JALR:
		return rs<<21 | rd<<11 | fnJalr, nil
	case SYSCALL:
		return fnSyscall, nil
	case MUL:
		return uint32(opSpecial2)<<26 | rs<<21 | rt<<16 | rd<<11 | 0x02, nil
	case J, JAL:
		code := uint32(opJ)
		if i.Op == JAL {
			code = opJal
		}
		return code<<26 | uint32(i.Imm)&0x03ffffff, nil
	case BEQ, BNE:
		return iOpcode[i.Op]<<26 | rs<<21 | rt<<16 | imm16(i.Imm), nil
	case BLEZ, BGTZ:
		return iOpcode[i.Op]<<26 | rs<<21 | imm16(i.Imm), nil
	case BLTZ:
		return uint32(opRegimm)<<26 | rs<<21 | 0<<16 | imm16(i.Imm), nil
	case BGEZ:
		return uint32(opRegimm)<<26 | rs<<21 | 1<<16 | imm16(i.Imm), nil
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI,
		LB, LH, LW, LBU, LHU, SB, SH, SW, LWC1, SWC1:
		return iOpcode[i.Op]<<26 | rs<<21 | rt<<16 | imm16(i.Imm), nil
	case LUI:
		return uint32(opLui)<<26 | rt<<16 | imm16(i.Imm), nil
	case MFC1:
		return uint32(opCop1)<<26 | uint32(c1Mfc1)<<21 | rt<<16 | rd<<11, nil
	case MTC1:
		return uint32(opCop1)<<26 | uint32(c1Mtc1)<<21 | rt<<16 | rd<<11, nil
	case BC1F:
		return uint32(opCop1)<<26 | uint32(c1Bc)<<21 | 0<<16 | imm16(i.Imm), nil
	case BC1T:
		return uint32(opCop1)<<26 | uint32(c1Bc)<<21 | 1<<16 | imm16(i.Imm), nil
	case ADDS, SUBS, MULS, DIVS, MOVS, NEGS, CVTWS, CEQS, CLTS, CLES:
		return uint32(opCop1)<<26 | uint32(c1FmtS)<<21 | rt<<16 | rs<<11 | rd<<6 | fpFunct[i.Op], nil
	case CVTSW:
		return uint32(opCop1)<<26 | uint32(c1FmtW)<<21 | rs<<11 | rd<<6 | fpCvtS, nil
	}
	return 0, fmt.Errorf("isa: cannot encode %v", i.Op)
}

func signExt16(v uint32) int32 { return int32(int16(v)) }

// Decode converts a 32-bit machine word back to an instruction.
func Decode(word uint32) (Inst, error) {
	if word == 0 {
		return Inst{Op: NOP}, nil
	}
	op := word >> 26
	rs := Reg(word >> 21 & 0x1f)
	rt := Reg(word >> 16 & 0x1f)
	rd := Reg(word >> 11 & 0x1f)
	shamt := int32(word >> 6 & 0x1f)
	funct := word & 0x3f
	imm := word & 0xffff

	switch op {
	case opSpecial:
		rop, ok := functR[funct]
		if !ok {
			return Inst{}, fmt.Errorf("isa: unknown SPECIAL funct %#x in word %#08x", funct, word)
		}
		switch rop {
		case SLL, SRL, SRA:
			return Inst{Op: rop, Rd: rd, Rt: rt, Imm: shamt}, nil
		case JR:
			return Inst{Op: JR, Rs: rs}, nil
		case JALR:
			return Inst{Op: JALR, Rd: rd, Rs: rs}, nil
		case SYSCALL:
			return Inst{Op: SYSCALL}, nil
		case MFHI, MFLO:
			return Inst{Op: rop, Rd: rd}, nil
		case MULT, DIV, DIVU:
			return Inst{Op: rop, Rs: rs, Rt: rt}, nil
		default:
			return Inst{Op: rop, Rd: rd, Rs: rs, Rt: rt}, nil
		}
	case opSpecial2:
		if funct == 0x02 {
			return Inst{Op: MUL, Rd: rd, Rs: rs, Rt: rt}, nil
		}
		return Inst{}, fmt.Errorf("isa: unknown SPECIAL2 funct %#x", funct)
	case opRegimm:
		switch rt {
		case 0:
			return Inst{Op: BLTZ, Rs: rs, Imm: signExt16(imm)}, nil
		case 1:
			return Inst{Op: BGEZ, Rs: rs, Imm: signExt16(imm)}, nil
		}
		return Inst{}, fmt.Errorf("isa: unknown REGIMM rt %d", rt)
	case opJ:
		return Inst{Op: J, Imm: int32(word & 0x03ffffff)}, nil
	case opJal:
		return Inst{Op: JAL, Imm: int32(word & 0x03ffffff)}, nil
	case opCop1:
		switch uint32(rs) {
		case c1Mfc1:
			return Inst{Op: MFC1, Rt: rt, Rd: rd}, nil
		case c1Mtc1:
			return Inst{Op: MTC1, Rt: rt, Rd: rd}, nil
		case c1Bc:
			o := BC1F
			if rt&1 == 1 {
				o = BC1T
			}
			return Inst{Op: o, Imm: signExt16(imm)}, nil
		case c1FmtS:
			fop, ok := functFP[funct]
			if !ok {
				return Inst{}, fmt.Errorf("isa: unknown COP1.S funct %#x", funct)
			}
			fd := Reg(word >> 6 & 0x1f)
			return Inst{Op: fop, Rd: fd, Rs: rd, Rt: rt}, nil
		case c1FmtW:
			if funct == fpCvtS {
				fd := Reg(word >> 6 & 0x1f)
				return Inst{Op: CVTSW, Rd: fd, Rs: rd}, nil
			}
			return Inst{}, fmt.Errorf("isa: unknown COP1.W funct %#x", funct)
		}
		return Inst{}, fmt.Errorf("isa: unknown COP1 sub-op %d", rs)
	case opLui:
		return Inst{Op: LUI, Rt: rt, Imm: int32(imm)}, nil
	case opAndi, opOri, opXori:
		return Inst{Op: opcodeI[op], Rt: rt, Rs: rs, Imm: int32(imm)}, nil
	case opBlez, opBgtz:
		return Inst{Op: opcodeI[op], Rs: rs, Imm: signExt16(imm)}, nil
	}
	if iop, ok := opcodeI[op]; ok {
		return Inst{Op: iop, Rt: rt, Rs: rs, Imm: signExt16(imm)}, nil
	}
	return Inst{}, fmt.Errorf("isa: unknown opcode %#x in word %#08x", op, word)
}

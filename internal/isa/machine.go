package isa

import (
	"fmt"
	"sort"
	"sync"
)

// Machine describes one instruction-set backend: its register roles and
// classes, its calling convention, and its binary encoding. The
// analysis packages (cfg, dataflow, pattern, classify, ...) consult a
// Machine instead of hardcoding any one ISA, so a second backend is a
// new description rather than a new analysis.
//
// Registers are shared indices 0-31 across backends; what differs is
// which index plays which role and how it is spelled. A backend with no
// small-data globals register reports that through GP's second result,
// and the pattern lattice then simply never produces GP leaves for it.
type Machine interface {
	// Name is the backend's canonical lowercase name ("mips", "arm").
	Name() string

	// Register roles.
	Zero() Reg            // hardwired zero register
	SP() Reg              // stack pointer
	FP() Reg              // frame pointer
	RA() Reg              // return-address register
	GP() (Reg, bool)      // globals/small-data base, if the ISA has one
	ArgRegs() []Reg       // integer argument registers, in order
	RetRegs() []Reg       // integer return-value registers, in order
	TempRegs() []Reg      // caller-saved allocatable temporaries
	SavedRegs() []Reg     // callee-saved allocatable registers
	CallClobbered() []Reg // registers a call may overwrite

	// RegName spells an integer register in the backend's assembly
	// syntax ("$sp" on MIPS, "sp" on ARM).
	RegName(r Reg) string

	// Encode and Decode translate between the shared Inst form and the
	// backend's 32-bit machine words. Every backend must round-trip:
	// Decode(Encode(i)) == i for any i it can encode.
	Encode(i Inst) (uint32, error)
	Decode(word uint32) (Inst, error)
}

var (
	machinesMu sync.RWMutex
	machines   = map[string]Machine{}
)

// Register adds a backend to the registry; backends call it from init.
// Registering two machines under one name panics: it is a programming
// error, not a runtime condition.
func Register(m Machine) {
	machinesMu.Lock()
	defer machinesMu.Unlock()
	if _, dup := machines[m.Name()]; dup {
		panic(fmt.Sprintf("isa: duplicate machine %q", m.Name()))
	}
	machines[m.Name()] = m
}

// ByName resolves a backend by name. The empty string resolves to
// "mips", the original ISA, so images from before machine descriptions
// existed keep decoding.
func ByName(name string) (Machine, error) {
	if name == "" {
		name = "mips"
	}
	machinesMu.RLock()
	defer machinesMu.RUnlock()
	m, ok := machines[name]
	if !ok {
		return nil, fmt.Errorf("isa: unknown machine %q (have %v)", name, namesLocked())
	}
	return m, nil
}

// Names lists the registered backends in sorted order.
func Names() []string {
	machinesMu.RLock()
	defer machinesMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(machines))
	for n := range machines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegByName(t *testing.T) {
	cases := []struct {
		name string
		want Reg
	}{
		{"zero", Zero}, {"sp", SP}, {"gp", GP}, {"ra", RA},
		{"t0", T0}, {"a3", A3}, {"v1", V1}, {"29", SP}, {"28", GP},
	}
	for _, c := range cases {
		got, ok := RegByName(c.name)
		if !ok || got != c.want {
			t.Errorf("RegByName(%q) = %v, %v; want %v", c.name, got, ok, c.want)
		}
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) succeeded")
	}
	if _, ok := RegByName("32"); ok {
		t.Error("RegByName(32) succeeded")
	}
}

func TestRegNameRoundtrip(t *testing.T) {
	for r := Reg(0); r < 32; r++ {
		name := RegName(r)
		got, ok := RegByName(name[1:])
		if !ok || got != r {
			t.Errorf("round trip of %s failed: got %v, %v", name, got, ok)
		}
	}
}

func TestOpByName(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		got, ok := OpByName(op.Name())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", op.Name(), got, ok, op)
		}
	}
}

// sampleInsts returns a representative instruction of every encodable form.
func sampleInsts() []Inst {
	return []Inst{
		{Op: NOP},
		{Op: SLL, Rd: T0, Rt: T1, Imm: 2},
		{Op: SRL, Rd: T0, Rt: T1, Imm: 31},
		{Op: SRA, Rd: S0, Rt: S1, Imm: 16},
		{Op: SLLV, Rd: T0, Rt: T1, Rs: T2},
		{Op: ADD, Rd: T0, Rs: T1, Rt: T2},
		{Op: ADDU, Rd: SP, Rs: SP, Rt: T0},
		{Op: SUB, Rd: V0, Rs: A0, Rt: A1},
		{Op: AND, Rd: T3, Rs: T4, Rt: T5},
		{Op: OR, Rd: T3, Rs: T4, Rt: T5},
		{Op: XOR, Rd: T3, Rs: T4, Rt: T5},
		{Op: NOR, Rd: T3, Rs: T4, Rt: T5},
		{Op: SLT, Rd: T3, Rs: T4, Rt: T5},
		{Op: SLTU, Rd: T3, Rs: T4, Rt: T5},
		{Op: MUL, Rd: T0, Rs: T1, Rt: T2},
		{Op: MULT, Rs: T1, Rt: T2},
		{Op: DIV, Rs: T1, Rt: T2},
		{Op: DIVU, Rs: T1, Rt: T2},
		{Op: MFHI, Rd: T0},
		{Op: MFLO, Rd: T0},
		{Op: JR, Rs: RA},
		{Op: JALR, Rd: RA, Rs: T9},
		{Op: J, Imm: 0x100040},
		{Op: JAL, Imm: 0x100100},
		{Op: BEQ, Rs: T0, Rt: T1, Imm: -4},
		{Op: BNE, Rs: T0, Rt: Zero, Imm: 12},
		{Op: BLEZ, Rs: T0, Imm: 3},
		{Op: BGTZ, Rs: T0, Imm: -1},
		{Op: BLTZ, Rs: T0, Imm: 7},
		{Op: BGEZ, Rs: T0, Imm: -7},
		{Op: SYSCALL},
		{Op: ADDI, Rt: T0, Rs: SP, Imm: -32},
		{Op: ADDIU, Rt: T0, Rs: GP, Imm: 1024},
		{Op: SLTI, Rt: T0, Rs: T1, Imm: 100},
		{Op: SLTIU, Rt: T0, Rs: T1, Imm: 100},
		{Op: ANDI, Rt: T0, Rs: T1, Imm: 0xff},
		{Op: ORI, Rt: T0, Rs: T1, Imm: 0xffff},
		{Op: XORI, Rt: T0, Rs: T1, Imm: 0xabc},
		{Op: LUI, Rt: T0, Imm: 0x1000},
		{Op: LB, Rt: T0, Rs: SP, Imm: 4},
		{Op: LH, Rt: T0, Rs: SP, Imm: 8},
		{Op: LW, Rt: T0, Rs: SP, Imm: -16},
		{Op: LBU, Rt: T0, Rs: GP, Imm: 2},
		{Op: LHU, Rt: T0, Rs: GP, Imm: 6},
		{Op: SB, Rt: T0, Rs: SP, Imm: 1},
		{Op: SH, Rt: T0, Rs: SP, Imm: 2},
		{Op: SW, Rt: RA, Rs: SP, Imm: 0},
		{Op: LWC1, Rt: 4, Rs: SP, Imm: 20},
		{Op: SWC1, Rt: 4, Rs: SP, Imm: 24},
		{Op: MFC1, Rt: T0, Rd: 2},
		{Op: MTC1, Rt: T0, Rd: 2},
		{Op: ADDS, Rd: 0, Rs: 2, Rt: 4},
		{Op: SUBS, Rd: 6, Rs: 8, Rt: 10},
		{Op: MULS, Rd: 1, Rs: 3, Rt: 5},
		{Op: DIVS, Rd: 7, Rs: 9, Rt: 11},
		{Op: MOVS, Rd: 12, Rs: 13},
		{Op: NEGS, Rd: 14, Rs: 15},
		{Op: CVTSW, Rd: 0, Rs: 1},
		{Op: CVTWS, Rd: 2, Rs: 3},
		{Op: CEQS, Rs: 0, Rt: 2},
		{Op: CLTS, Rs: 4, Rt: 6},
		{Op: CLES, Rs: 8, Rt: 10},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, in := range sampleInsts() {
		word, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(word)
		if err != nil {
			t.Fatalf("Decode(%#08x) of %v: %v", word, in, err)
		}
		if out != in {
			t.Errorf("round trip of %v gave %v (word %#08x)", in, out, word)
		}
	}
}

func TestDecodeUnknown(t *testing.T) {
	bad := []uint32{
		0x0000003f,        // SPECIAL funct 0x3f
		0x70000000 | 0x3f, // SPECIAL2 funct 0x3f
		0xfc000000,        // opcode 0x3f
		0x04190000,        // REGIMM rt=25
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded; want error", w)
		}
	}
}

// TestQuickALURoundtrip exercises random register/immediate combinations of
// the common ALU and memory forms through encode/decode.
func TestQuickALURoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(op8 uint8, rd, rs, rt uint8, imm int16) bool {
		ops := []Op{ADD, SUB, AND, OR, XOR, SLT, ADDI, ADDIU, LW, SW, LB, SB, BEQ, BNE}
		in := Inst{
			Op: ops[int(op8)%len(ops)],
			Rd: Reg(rd % 32), Rs: Reg(rs % 32), Rt: Reg(rt % 32),
			Imm: int32(imm),
		}
		switch in.Op {
		case ADD, SUB, AND, OR, XOR, SLT:
			in.Imm = 0
		case ADDI, ADDIU, LW, SW, LB, SB, BEQ, BNE:
			in.Rd = 0
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInstPredicates(t *testing.T) {
	lw := Inst{Op: LW, Rt: T0, Rs: SP, Imm: 4}
	if !lw.IsLoad() || lw.IsStore() || lw.MemBytes() != 4 {
		t.Errorf("LW predicates wrong: %+v", lw)
	}
	sb := Inst{Op: SB, Rt: T0, Rs: SP}
	if sb.IsLoad() || !sb.IsStore() || sb.MemBytes() != 1 {
		t.Errorf("SB predicates wrong: %+v", sb)
	}
	lwc1 := Inst{Op: LWC1, Rt: 2, Rs: GP}
	if !lwc1.IsLoad() || lwc1.MemBytes() != 4 {
		t.Errorf("LWC1 predicates wrong: %+v", lwc1)
	}
	if !(Inst{Op: JR, Rs: RA}).IsReturn() {
		t.Error("jr $ra not a return")
	}
	if (Inst{Op: JR, Rs: T0}).IsReturn() {
		t.Error("jr $t0 is a return")
	}
	if !(Inst{Op: JAL}).IsCall() || !(Inst{Op: JALR, Rs: T9}).IsCall() {
		t.Error("call predicate wrong")
	}
	for _, op := range []Op{BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, BC1T, BC1F} {
		if !(Inst{Op: op}).IsBranch() {
			t.Errorf("%v not a branch", op)
		}
	}
	if !(Inst{Op: SYSCALL}).EndsBlock() || !(Inst{Op: J}).EndsBlock() {
		t.Error("EndsBlock wrong")
	}
	if (Inst{Op: ADD}).EndsBlock() {
		t.Error("ADD ends block")
	}
}

func TestBranchAndJumpTargets(t *testing.T) {
	b := Inst{Op: BNE, Rs: T0, Rt: Zero, Imm: -2}
	if got := b.BranchTarget(0x400010); got != 0x40000c {
		t.Errorf("BranchTarget = %#x, want 0x40000c", got)
	}
	j := Inst{Op: J, Imm: int32(0x00400040 >> 2)}
	if got := j.JumpTarget(0x00400000); got != 0x00400040 {
		t.Errorf("JumpTarget = %#x, want 0x00400040", got)
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		in   Inst
		defs []Reg
		uses []Reg
	}{
		{Inst{Op: ADD, Rd: T0, Rs: T1, Rt: T2}, []Reg{T0}, []Reg{T1, T2}},
		{Inst{Op: ADDIU, Rt: T0, Rs: SP, Imm: 8}, []Reg{T0}, []Reg{SP}},
		{Inst{Op: LW, Rt: T0, Rs: SP, Imm: 8}, []Reg{T0}, []Reg{SP}},
		{Inst{Op: SW, Rt: T0, Rs: SP, Imm: 8}, nil, []Reg{SP, T0}},
		{Inst{Op: LUI, Rt: T0, Imm: 1}, []Reg{T0}, nil},
		{Inst{Op: JAL, Imm: 100}, []Reg{RA}, nil},
		{Inst{Op: JR, Rs: RA}, nil, []Reg{RA}},
		{Inst{Op: SLL, Rd: T0, Rt: T1, Imm: 2}, []Reg{T0}, []Reg{T1}},
		{Inst{Op: LWC1, Rt: 4, Rs: GP, Imm: 0}, nil, []Reg{GP}},
		{Inst{Op: MFC1, Rt: T0, Rd: 2}, []Reg{T0}, nil},
		{Inst{Op: MTC1, Rt: T0, Rd: 2}, nil, []Reg{T0}},
	}
	for _, c := range cases {
		gotD, gotU := c.in.Defs(), c.in.Uses()
		if !regsEqual(gotD, c.defs) {
			t.Errorf("%v Defs = %v, want %v", c.in, gotD, c.defs)
		}
		if !regsEqualUnordered(gotU, c.uses) {
			t.Errorf("%v Uses = %v, want %v", c.in, gotU, c.uses)
		}
	}
}

func regsEqual(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func regsEqualUnordered(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[Reg]int{}
	for _, r := range a {
		m[r]++
	}
	for _, r := range b {
		m[r]--
	}
	for _, n := range m {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: LW, Rt: T0, Rs: SP, Imm: 8}, "lw $t0, 8($sp)"},
		{Inst{Op: ADD, Rd: T0, Rs: T1, Rt: T2}, "add $t0, $t1, $t2"},
		{Inst{Op: SLL, Rd: T0, Rt: T1, Imm: 2}, "sll $t0, $t1, 2"},
		{Inst{Op: ADDIU, Rt: V0, Rs: GP, Imm: -4}, "addiu $v0, $gp, -4"},
		{Inst{Op: LUI, Rt: AT, Imm: 4096}, "lui $at, 4096"},
		{Inst{Op: JR, Rs: RA}, "jr $ra"},
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: SYSCALL}, "syscall"},
		{Inst{Op: LWC1, Rt: 4, Rs: SP, Imm: 12}, "lwc1 $f4, 12($sp)"},
		{Inst{Op: ADDS, Rd: 0, Rs: 2, Rt: 4}, "add.s $f0, $f2, $f4"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// TestQuickDecodeEncodeIdempotent: for any word that decodes, encoding
// the decoded instruction must yield a word that decodes to the same
// instruction (the canonical encoding may clear don't-care bits).
func TestQuickDecodeEncodeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 200000; i++ {
		w := rng.Uint32()
		in, err := Decode(w)
		if err != nil {
			continue
		}
		checked++
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %v (from %#08x) does not encode: %v", in, w, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("canonical word %#08x does not decode: %v", w2, err)
		}
		if in2 != in {
			t.Fatalf("%#08x -> %v -> %#08x -> %v", w, in, w2, in2)
		}
	}
	if checked < 1000 {
		t.Errorf("only %d random words decoded; generator too narrow", checked)
	}
}

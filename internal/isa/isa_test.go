package isa

import (
	"testing"
)

func TestRegByName(t *testing.T) {
	cases := []struct {
		name string
		want Reg
	}{
		{"zero", Zero}, {"sp", SP}, {"gp", GP}, {"ra", RA},
		{"t0", T0}, {"a3", A3}, {"v1", V1}, {"29", SP}, {"28", GP},
	}
	for _, c := range cases {
		got, ok := RegByName(c.name)
		if !ok || got != c.want {
			t.Errorf("RegByName(%q) = %v, %v; want %v", c.name, got, ok, c.want)
		}
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) succeeded")
	}
	if _, ok := RegByName("32"); ok {
		t.Error("RegByName(32) succeeded")
	}
}

func TestRegNameRoundtrip(t *testing.T) {
	for r := Reg(0); r < 32; r++ {
		name := RegName(r)
		got, ok := RegByName(name[1:])
		if !ok || got != r {
			t.Errorf("round trip of %s failed: got %v, %v", name, got, ok)
		}
	}
}

func TestOpByName(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		got, ok := OpByName(op.Name())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", op.Name(), got, ok, op)
		}
	}
}

func TestInstPredicates(t *testing.T) {
	lw := Inst{Op: LW, Rt: T0, Rs: SP, Imm: 4}
	if !lw.IsLoad() || lw.IsStore() || lw.MemBytes() != 4 {
		t.Errorf("LW predicates wrong: %+v", lw)
	}
	sb := Inst{Op: SB, Rt: T0, Rs: SP}
	if sb.IsLoad() || !sb.IsStore() || sb.MemBytes() != 1 {
		t.Errorf("SB predicates wrong: %+v", sb)
	}
	lwc1 := Inst{Op: LWC1, Rt: 2, Rs: GP}
	if !lwc1.IsLoad() || lwc1.MemBytes() != 4 {
		t.Errorf("LWC1 predicates wrong: %+v", lwc1)
	}
	if !(Inst{Op: JR, Rs: RA}).IsReturn() {
		t.Error("jr $ra not a return")
	}
	if (Inst{Op: JR, Rs: T0}).IsReturn() {
		t.Error("jr $t0 is a return")
	}
	if !(Inst{Op: JAL}).IsCall() || !(Inst{Op: JALR, Rs: T9}).IsCall() {
		t.Error("call predicate wrong")
	}
	for _, op := range []Op{BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, BC1T, BC1F} {
		if !(Inst{Op: op}).IsBranch() {
			t.Errorf("%v not a branch", op)
		}
	}
	if !(Inst{Op: SYSCALL}).EndsBlock() || !(Inst{Op: J}).EndsBlock() {
		t.Error("EndsBlock wrong")
	}
	if (Inst{Op: ADD}).EndsBlock() {
		t.Error("ADD ends block")
	}
}

func TestBranchAndJumpTargets(t *testing.T) {
	b := Inst{Op: BNE, Rs: T0, Rt: Zero, Imm: -2}
	if got := b.BranchTarget(0x400010); got != 0x40000c {
		t.Errorf("BranchTarget = %#x, want 0x40000c", got)
	}
	j := Inst{Op: J, Imm: int32(0x00400040 >> 2)}
	if got := j.JumpTarget(0x00400000); got != 0x00400040 {
		t.Errorf("JumpTarget = %#x, want 0x00400040", got)
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		in   Inst
		defs []Reg
		uses []Reg
	}{
		{Inst{Op: ADD, Rd: T0, Rs: T1, Rt: T2}, []Reg{T0}, []Reg{T1, T2}},
		{Inst{Op: ADDIU, Rt: T0, Rs: SP, Imm: 8}, []Reg{T0}, []Reg{SP}},
		{Inst{Op: LW, Rt: T0, Rs: SP, Imm: 8}, []Reg{T0}, []Reg{SP}},
		{Inst{Op: SW, Rt: T0, Rs: SP, Imm: 8}, nil, []Reg{SP, T0}},
		{Inst{Op: LUI, Rt: T0, Imm: 1}, []Reg{T0}, nil},
		{Inst{Op: JAL, Imm: 100}, []Reg{RA}, nil},
		{Inst{Op: JR, Rs: RA}, nil, []Reg{RA}},
		{Inst{Op: SLL, Rd: T0, Rt: T1, Imm: 2}, []Reg{T0}, []Reg{T1}},
		{Inst{Op: LWC1, Rt: 4, Rs: GP, Imm: 0}, nil, []Reg{GP}},
		{Inst{Op: MFC1, Rt: T0, Rd: 2}, []Reg{T0}, nil},
		{Inst{Op: MTC1, Rt: T0, Rd: 2}, nil, []Reg{T0}},
	}
	for _, c := range cases {
		gotD, gotU := c.in.Defs(), c.in.Uses()
		if !regsEqual(gotD, c.defs) {
			t.Errorf("%v Defs = %v, want %v", c.in, gotD, c.defs)
		}
		if !regsEqualUnordered(gotU, c.uses) {
			t.Errorf("%v Uses = %v, want %v", c.in, gotU, c.uses)
		}
	}
}

func regsEqual(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func regsEqualUnordered(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[Reg]int{}
	for _, r := range a {
		m[r]++
	}
	for _, r := range b {
		m[r]--
	}
	for _, n := range m {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: LW, Rt: T0, Rs: SP, Imm: 8}, "lw $t0, 8($sp)"},
		{Inst{Op: ADD, Rd: T0, Rs: T1, Rt: T2}, "add $t0, $t1, $t2"},
		{Inst{Op: SLL, Rd: T0, Rt: T1, Imm: 2}, "sll $t0, $t1, 2"},
		{Inst{Op: ADDIU, Rt: V0, Rs: GP, Imm: -4}, "addiu $v0, $gp, -4"},
		{Inst{Op: LUI, Rt: AT, Imm: 4096}, "lui $at, 4096"},
		{Inst{Op: JR, Rs: RA}, "jr $ra"},
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: SYSCALL}, "syscall"},
		{Inst{Op: LWC1, Rt: 4, Rs: SP, Imm: 12}, "lwc1 $f4, 12($sp)"},
		{Inst{Op: ADDS, Rd: 0, Rs: 2, Rt: 4}, "add.s $f0, $f2, $f4"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

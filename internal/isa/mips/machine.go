// Package mips is the original MIPS-like backend, packaged as a
// machine description: the o32 register convention, the R/I/J/COP1
// binary formats, and the role map the analysis packages consult
// instead of hardcoding MIPS register numbers. See package isa for the
// shared instruction representation.
package mips

import "delinq/internal/isa"

// machine is the MIPS o32 description. One stateless value serves the
// whole process.
type machine struct{}

// M is the MIPS machine description.
var M isa.Machine = machine{}

func init() { isa.Register(M) }

func (machine) Name() string        { return "mips" }
func (machine) Zero() isa.Reg       { return isa.Zero }
func (machine) SP() isa.Reg         { return isa.SP }
func (machine) FP() isa.Reg         { return isa.FP }
func (machine) RA() isa.Reg         { return isa.RA }
func (machine) GP() (isa.Reg, bool) { return isa.GP, true }

func (machine) ArgRegs() []isa.Reg { return []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3} }
func (machine) RetRegs() []isa.Reg { return []isa.Reg{isa.V0, isa.V1} }

func (machine) TempRegs() []isa.Reg {
	return []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7, isa.T8, isa.T9}
}

func (machine) SavedRegs() []isa.Reg {
	return []isa.Reg{isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7}
}

func (machine) CallClobbered() []isa.Reg {
	return []isa.Reg{
		isa.V0, isa.V1, isa.A0, isa.A1, isa.A2, isa.A3,
		isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7,
		isa.T8, isa.T9, isa.AT, isa.RA,
	}
}

func (machine) RegName(r isa.Reg) string { return isa.RegName(r) }

func (machine) Encode(i isa.Inst) (uint32, error)    { return Encode(i) }
func (machine) Decode(word uint32) (isa.Inst, error) { return Decode(word) }

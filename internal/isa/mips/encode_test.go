package mips

import (
	"math/rand"
	"testing"
	"testing/quick"

	. "delinq/internal/isa"
)

// sampleInsts returns a representative instruction of every encodable form.
func sampleInsts() []Inst {
	return []Inst{
		{Op: NOP},
		{Op: SLL, Rd: T0, Rt: T1, Imm: 2},
		{Op: SRL, Rd: T0, Rt: T1, Imm: 31},
		{Op: SRA, Rd: S0, Rt: S1, Imm: 16},
		{Op: SLLV, Rd: T0, Rt: T1, Rs: T2},
		{Op: ADD, Rd: T0, Rs: T1, Rt: T2},
		{Op: ADDU, Rd: SP, Rs: SP, Rt: T0},
		{Op: SUB, Rd: V0, Rs: A0, Rt: A1},
		{Op: AND, Rd: T3, Rs: T4, Rt: T5},
		{Op: OR, Rd: T3, Rs: T4, Rt: T5},
		{Op: XOR, Rd: T3, Rs: T4, Rt: T5},
		{Op: NOR, Rd: T3, Rs: T4, Rt: T5},
		{Op: SLT, Rd: T3, Rs: T4, Rt: T5},
		{Op: SLTU, Rd: T3, Rs: T4, Rt: T5},
		{Op: MUL, Rd: T0, Rs: T1, Rt: T2},
		{Op: MULT, Rs: T1, Rt: T2},
		{Op: DIV, Rs: T1, Rt: T2},
		{Op: DIVU, Rs: T1, Rt: T2},
		{Op: MFHI, Rd: T0},
		{Op: MFLO, Rd: T0},
		{Op: JR, Rs: RA},
		{Op: JALR, Rd: RA, Rs: T9},
		{Op: J, Imm: 0x100040},
		{Op: JAL, Imm: 0x100100},
		{Op: BEQ, Rs: T0, Rt: T1, Imm: -4},
		{Op: BNE, Rs: T0, Rt: Zero, Imm: 12},
		{Op: BLEZ, Rs: T0, Imm: 3},
		{Op: BGTZ, Rs: T0, Imm: -1},
		{Op: BLTZ, Rs: T0, Imm: 7},
		{Op: BGEZ, Rs: T0, Imm: -7},
		{Op: SYSCALL},
		{Op: ADDI, Rt: T0, Rs: SP, Imm: -32},
		{Op: ADDIU, Rt: T0, Rs: GP, Imm: 1024},
		{Op: SLTI, Rt: T0, Rs: T1, Imm: 100},
		{Op: SLTIU, Rt: T0, Rs: T1, Imm: 100},
		{Op: ANDI, Rt: T0, Rs: T1, Imm: 0xff},
		{Op: ORI, Rt: T0, Rs: T1, Imm: 0xffff},
		{Op: XORI, Rt: T0, Rs: T1, Imm: 0xabc},
		{Op: LUI, Rt: T0, Imm: 0x1000},
		{Op: LB, Rt: T0, Rs: SP, Imm: 4},
		{Op: LH, Rt: T0, Rs: SP, Imm: 8},
		{Op: LW, Rt: T0, Rs: SP, Imm: -16},
		{Op: LBU, Rt: T0, Rs: GP, Imm: 2},
		{Op: LHU, Rt: T0, Rs: GP, Imm: 6},
		{Op: SB, Rt: T0, Rs: SP, Imm: 1},
		{Op: SH, Rt: T0, Rs: SP, Imm: 2},
		{Op: SW, Rt: RA, Rs: SP, Imm: 0},
		{Op: LWC1, Rt: 4, Rs: SP, Imm: 20},
		{Op: SWC1, Rt: 4, Rs: SP, Imm: 24},
		{Op: MFC1, Rt: T0, Rd: 2},
		{Op: MTC1, Rt: T0, Rd: 2},
		{Op: ADDS, Rd: 0, Rs: 2, Rt: 4},
		{Op: SUBS, Rd: 6, Rs: 8, Rt: 10},
		{Op: MULS, Rd: 1, Rs: 3, Rt: 5},
		{Op: DIVS, Rd: 7, Rs: 9, Rt: 11},
		{Op: MOVS, Rd: 12, Rs: 13},
		{Op: NEGS, Rd: 14, Rs: 15},
		{Op: CVTSW, Rd: 0, Rs: 1},
		{Op: CVTWS, Rd: 2, Rs: 3},
		{Op: CEQS, Rs: 0, Rt: 2},
		{Op: CLTS, Rs: 4, Rt: 6},
		{Op: CLES, Rs: 8, Rt: 10},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, in := range sampleInsts() {
		word, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(word)
		if err != nil {
			t.Fatalf("Decode(%#08x) of %v: %v", word, in, err)
		}
		if out != in {
			t.Errorf("round trip of %v gave %v (word %#08x)", in, out, word)
		}
	}
}

func TestDecodeUnknown(t *testing.T) {
	bad := []uint32{
		0x0000003f,        // SPECIAL funct 0x3f
		0x70000000 | 0x3f, // SPECIAL2 funct 0x3f
		0xfc000000,        // opcode 0x3f
		0x04190000,        // REGIMM rt=25
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded; want error", w)
		}
	}
}

// TestQuickALURoundtrip exercises random register/immediate combinations of
// the common ALU and memory forms through encode/decode.
func TestQuickALURoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(op8 uint8, rd, rs, rt uint8, imm int16) bool {
		ops := []Op{ADD, SUB, AND, OR, XOR, SLT, ADDI, ADDIU, LW, SW, LB, SB, BEQ, BNE}
		in := Inst{
			Op: ops[int(op8)%len(ops)],
			Rd: Reg(rd % 32), Rs: Reg(rs % 32), Rt: Reg(rt % 32),
			Imm: int32(imm),
		}
		switch in.Op {
		case ADD, SUB, AND, OR, XOR, SLT:
			in.Imm = 0
		case ADDI, ADDIU, LW, SW, LB, SB, BEQ, BNE:
			in.Rd = 0
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeEncodeIdempotent: for any word that decodes, encoding
// the decoded instruction must yield a word that decodes to the same
// instruction (the canonical encoding may clear don't-care bits).
func TestQuickDecodeEncodeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 200000; i++ {
		w := rng.Uint32()
		in, err := Decode(w)
		if err != nil {
			continue
		}
		checked++
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %v (from %#08x) does not encode: %v", in, w, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("canonical word %#08x does not decode: %v", w2, err)
		}
		if in2 != in {
			t.Fatalf("%#08x -> %v -> %#08x -> %v", w, in, w2, in2)
		}
	}
	if checked < 1000 {
		t.Errorf("only %d random words decoded; generator too narrow", checked)
	}
}

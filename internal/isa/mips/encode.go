package mips

import (
	"fmt"

	"delinq/internal/isa"
)

// Binary instruction formats follow MIPS I conventions:
//
//	R-type:  op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)
//	I-type:  op(6) rs(5) rt(5) imm(16)
//	isa.J-type:  op(6) index(26)
//	COP1:    op=0x11, sub-format in the rs field or fmt field
//
// isa.MUL uses the MIPS32 SPECIAL2 encoding (op=0x1c funct=0x02).

const (
	opSpecial  = 0x00
	opRegimm   = 0x01
	opJ        = 0x02
	opJal      = 0x03
	opBeq      = 0x04
	opBne      = 0x05
	opBlez     = 0x06
	opBgtz     = 0x07
	opAddi     = 0x08
	opAddiu    = 0x09
	opSlti     = 0x0a
	opSltiu    = 0x0b
	opAndi     = 0x0c
	opOri      = 0x0d
	opXori     = 0x0e
	opLui      = 0x0f
	opCop1     = 0x11
	opSpecial2 = 0x1c
	opLb       = 0x20
	opLh       = 0x21
	opLw       = 0x23
	opLbu      = 0x24
	opLhu      = 0x25
	opSb       = 0x28
	opSh       = 0x29
	opSw       = 0x2b
	opLwc1     = 0x31
	opSwc1     = 0x39
)

const (
	fnSll     = 0x00
	fnSrl     = 0x02
	fnSra     = 0x03
	fnSllv    = 0x04
	fnSrlv    = 0x06
	fnSrav    = 0x07
	fnJr      = 0x08
	fnJalr    = 0x09
	fnSyscall = 0x0c
	fnMfhi    = 0x10
	fnMflo    = 0x12
	fnMult    = 0x18
	fnDiv     = 0x1a
	fnDivu    = 0x1b
	fnAdd     = 0x20
	fnAddu    = 0x21
	fnSub     = 0x22
	fnSubu    = 0x23
	fnAnd     = 0x24
	fnOr      = 0x25
	fnXor     = 0x26
	fnNor     = 0x27
	fnSlt     = 0x2a
	fnSltu    = 0x2b
)

// COP1 fmt and function codes.
const (
	c1Mfc1 = 0x00
	c1Mtc1 = 0x04
	c1Bc   = 0x08
	c1FmtS = 0x10
	c1FmtW = 0x14

	fpAdd   = 0x00
	fpSub   = 0x01
	fpMul   = 0x02
	fpDiv   = 0x03
	fpMov   = 0x06
	fpNeg   = 0x07
	fpCvtS  = 0x20 // cvt.s.w under fmt W
	fpCvtW  = 0x24 // cvt.w.s under fmt S
	fpCmpEq = 0x32
	fpCmpLt = 0x3c
	fpCmpLe = 0x3e
)

var rFunct = map[isa.Op]uint32{
	isa.SLL: fnSll, isa.SRL: fnSrl, isa.SRA: fnSra, isa.SLLV: fnSllv, isa.SRLV: fnSrlv, isa.SRAV: fnSrav,
	isa.JR: fnJr, isa.JALR: fnJalr, isa.SYSCALL: fnSyscall,
	isa.MFHI: fnMfhi, isa.MFLO: fnMflo, isa.MULT: fnMult, isa.DIV: fnDiv, isa.DIVU: fnDivu,
	isa.ADD: fnAdd, isa.ADDU: fnAddu, isa.SUB: fnSub, isa.SUBU: fnSubu,
	isa.AND: fnAnd, isa.OR: fnOr, isa.XOR: fnXor, isa.NOR: fnNor, isa.SLT: fnSlt, isa.SLTU: fnSltu,
}

var functR = func() map[uint32]isa.Op {
	m := make(map[uint32]isa.Op, len(rFunct))
	for op, fn := range rFunct {
		m[fn] = op
	}
	return m
}()

var iOpcode = map[isa.Op]uint32{
	isa.BEQ: opBeq, isa.BNE: opBne, isa.BLEZ: opBlez, isa.BGTZ: opBgtz,
	isa.ADDI: opAddi, isa.ADDIU: opAddiu, isa.SLTI: opSlti, isa.SLTIU: opSltiu,
	isa.ANDI: opAndi, isa.ORI: opOri, isa.XORI: opXori, isa.LUI: opLui,
	isa.LB: opLb, isa.LH: opLh, isa.LW: opLw, isa.LBU: opLbu, isa.LHU: opLhu,
	isa.SB: opSb, isa.SH: opSh, isa.SW: opSw, isa.LWC1: opLwc1, isa.SWC1: opSwc1,
}

var opcodeI = func() map[uint32]isa.Op {
	m := make(map[uint32]isa.Op, len(iOpcode))
	for op, code := range iOpcode {
		m[code] = op
	}
	return m
}()

var fpFunct = map[isa.Op]uint32{
	isa.ADDS: fpAdd, isa.SUBS: fpSub, isa.MULS: fpMul, isa.DIVS: fpDiv,
	isa.MOVS: fpMov, isa.NEGS: fpNeg, isa.CVTWS: fpCvtW,
	isa.CEQS: fpCmpEq, isa.CLTS: fpCmpLt, isa.CLES: fpCmpLe,
}

var functFP = func() map[uint32]isa.Op {
	m := make(map[uint32]isa.Op, len(fpFunct))
	for op, fn := range fpFunct {
		m[fn] = op
	}
	return m
}()

func imm16(v int32) uint32 { return uint32(v) & 0xffff }

// Encode converts an instruction to its 32-bit machine word.
func Encode(i isa.Inst) (uint32, error) {
	rd, rs, rt := uint32(i.Rd), uint32(i.Rs), uint32(i.Rt)
	switch i.Op {
	case isa.NOP:
		return 0, nil
	case isa.SLL, isa.SRL, isa.SRA:
		return rt<<16 | rd<<11 | (uint32(i.Imm)&0x1f)<<6 | rFunct[i.Op], nil
	case isa.SLLV, isa.SRLV, isa.SRAV, isa.ADD, isa.ADDU, isa.SUB, isa.SUBU, isa.AND, isa.OR, isa.XOR, isa.NOR, isa.SLT, isa.SLTU:
		return rs<<21 | rt<<16 | rd<<11 | rFunct[i.Op], nil
	case isa.MULT, isa.DIV, isa.DIVU:
		return rs<<21 | rt<<16 | rFunct[i.Op], nil
	case isa.MFHI, isa.MFLO:
		return rd<<11 | rFunct[i.Op], nil
	case isa.JR:
		return rs<<21 | fnJr, nil
	case isa.JALR:
		return rs<<21 | rd<<11 | fnJalr, nil
	case isa.SYSCALL:
		return fnSyscall, nil
	case isa.MUL:
		return uint32(opSpecial2)<<26 | rs<<21 | rt<<16 | rd<<11 | 0x02, nil
	case isa.J, isa.JAL:
		code := uint32(opJ)
		if i.Op == isa.JAL {
			code = opJal
		}
		return code<<26 | uint32(i.Imm)&0x03ffffff, nil
	case isa.BEQ, isa.BNE:
		return iOpcode[i.Op]<<26 | rs<<21 | rt<<16 | imm16(i.Imm), nil
	case isa.BLEZ, isa.BGTZ:
		return iOpcode[i.Op]<<26 | rs<<21 | imm16(i.Imm), nil
	case isa.BLTZ:
		return uint32(opRegimm)<<26 | rs<<21 | 0<<16 | imm16(i.Imm), nil
	case isa.BGEZ:
		return uint32(opRegimm)<<26 | rs<<21 | 1<<16 | imm16(i.Imm), nil
	case isa.ADDI, isa.ADDIU, isa.SLTI, isa.SLTIU, isa.ANDI, isa.ORI, isa.XORI,
		isa.LB, isa.LH, isa.LW, isa.LBU, isa.LHU, isa.SB, isa.SH, isa.SW, isa.LWC1, isa.SWC1:
		return iOpcode[i.Op]<<26 | rs<<21 | rt<<16 | imm16(i.Imm), nil
	case isa.LUI:
		return uint32(opLui)<<26 | rt<<16 | imm16(i.Imm), nil
	case isa.MFC1:
		return uint32(opCop1)<<26 | uint32(c1Mfc1)<<21 | rt<<16 | rd<<11, nil
	case isa.MTC1:
		return uint32(opCop1)<<26 | uint32(c1Mtc1)<<21 | rt<<16 | rd<<11, nil
	case isa.BC1F:
		return uint32(opCop1)<<26 | uint32(c1Bc)<<21 | 0<<16 | imm16(i.Imm), nil
	case isa.BC1T:
		return uint32(opCop1)<<26 | uint32(c1Bc)<<21 | 1<<16 | imm16(i.Imm), nil
	case isa.ADDS, isa.SUBS, isa.MULS, isa.DIVS, isa.MOVS, isa.NEGS, isa.CVTWS, isa.CEQS, isa.CLTS, isa.CLES:
		return uint32(opCop1)<<26 | uint32(c1FmtS)<<21 | rt<<16 | rs<<11 | rd<<6 | fpFunct[i.Op], nil
	case isa.CVTSW:
		return uint32(opCop1)<<26 | uint32(c1FmtW)<<21 | rs<<11 | rd<<6 | fpCvtS, nil
	}
	return 0, fmt.Errorf("isa: cannot encode %v", i.Op)
}

func signExt16(v uint32) int32 { return int32(int16(v)) }

// Decode converts a 32-bit machine word back to an instruction.
func Decode(word uint32) (isa.Inst, error) {
	if word == 0 {
		return isa.Inst{Op: isa.NOP}, nil
	}
	op := word >> 26
	rs := isa.Reg(word >> 21 & 0x1f)
	rt := isa.Reg(word >> 16 & 0x1f)
	rd := isa.Reg(word >> 11 & 0x1f)
	shamt := int32(word >> 6 & 0x1f)
	funct := word & 0x3f
	imm := word & 0xffff

	switch op {
	case opSpecial:
		rop, ok := functR[funct]
		if !ok {
			return isa.Inst{}, fmt.Errorf("isa: unknown SPECIAL funct %#x in word %#08x", funct, word)
		}
		switch rop {
		case isa.SLL, isa.SRL, isa.SRA:
			return isa.Inst{Op: rop, Rd: rd, Rt: rt, Imm: shamt}, nil
		case isa.JR:
			return isa.Inst{Op: isa.JR, Rs: rs}, nil
		case isa.JALR:
			return isa.Inst{Op: isa.JALR, Rd: rd, Rs: rs}, nil
		case isa.SYSCALL:
			return isa.Inst{Op: isa.SYSCALL}, nil
		case isa.MFHI, isa.MFLO:
			return isa.Inst{Op: rop, Rd: rd}, nil
		case isa.MULT, isa.DIV, isa.DIVU:
			return isa.Inst{Op: rop, Rs: rs, Rt: rt}, nil
		default:
			return isa.Inst{Op: rop, Rd: rd, Rs: rs, Rt: rt}, nil
		}
	case opSpecial2:
		if funct == 0x02 {
			return isa.Inst{Op: isa.MUL, Rd: rd, Rs: rs, Rt: rt}, nil
		}
		return isa.Inst{}, fmt.Errorf("isa: unknown SPECIAL2 funct %#x", funct)
	case opRegimm:
		switch rt {
		case 0:
			return isa.Inst{Op: isa.BLTZ, Rs: rs, Imm: signExt16(imm)}, nil
		case 1:
			return isa.Inst{Op: isa.BGEZ, Rs: rs, Imm: signExt16(imm)}, nil
		}
		return isa.Inst{}, fmt.Errorf("isa: unknown REGIMM rt %d", rt)
	case opJ:
		return isa.Inst{Op: isa.J, Imm: int32(word & 0x03ffffff)}, nil
	case opJal:
		return isa.Inst{Op: isa.JAL, Imm: int32(word & 0x03ffffff)}, nil
	case opCop1:
		switch uint32(rs) {
		case c1Mfc1:
			return isa.Inst{Op: isa.MFC1, Rt: rt, Rd: rd}, nil
		case c1Mtc1:
			return isa.Inst{Op: isa.MTC1, Rt: rt, Rd: rd}, nil
		case c1Bc:
			o := isa.BC1F
			if rt&1 == 1 {
				o = isa.BC1T
			}
			return isa.Inst{Op: o, Imm: signExt16(imm)}, nil
		case c1FmtS:
			fop, ok := functFP[funct]
			if !ok {
				return isa.Inst{}, fmt.Errorf("isa: unknown COP1.S funct %#x", funct)
			}
			fd := isa.Reg(word >> 6 & 0x1f)
			return isa.Inst{Op: fop, Rd: fd, Rs: rd, Rt: rt}, nil
		case c1FmtW:
			if funct == fpCvtS {
				fd := isa.Reg(word >> 6 & 0x1f)
				return isa.Inst{Op: isa.CVTSW, Rd: fd, Rs: rd}, nil
			}
			return isa.Inst{}, fmt.Errorf("isa: unknown COP1.W funct %#x", funct)
		}
		return isa.Inst{}, fmt.Errorf("isa: unknown COP1 sub-op %d", rs)
	case opLui:
		return isa.Inst{Op: isa.LUI, Rt: rt, Imm: int32(imm)}, nil
	case opAndi, opOri, opXori:
		return isa.Inst{Op: opcodeI[op], Rt: rt, Rs: rs, Imm: int32(imm)}, nil
	case opBlez, opBgtz:
		return isa.Inst{Op: opcodeI[op], Rs: rs, Imm: signExt16(imm)}, nil
	}
	if iop, ok := opcodeI[op]; ok {
		return isa.Inst{Op: iop, Rt: rt, Rs: rs, Imm: signExt16(imm)}, nil
	}
	return isa.Inst{}, fmt.Errorf("isa: unknown opcode %#x in word %#08x", op, word)
}

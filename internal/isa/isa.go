// Package isa defines the MIPS-like 32-bit instruction set used throughout
// the repository: register names, opcodes, a decoded instruction
// representation, and binary encoding/decoding of the R/I/J/COP1 formats.
//
// The ISA is a close subset of MIPS I plus the MIPS32 mul instruction and
// single-precision COP1 arithmetic. Unlike real MIPS there are no branch
// delay slots: a taken branch transfers control directly to its target.
package isa

import "fmt"

// Reg is an integer or floating-point register number (0-31). Whether a
// Reg names the integer or the FP file depends on the instruction field it
// appears in; see the comments on Inst.
type Reg uint8

// Integer register conventions (MIPS o32).
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary
	V0   Reg = 2 // return value 0
	V1   Reg = 3 // return value 1
	A0   Reg = 4 // argument 0
	A1   Reg = 5 // argument 1
	A2   Reg = 6 // argument 2
	A3   Reg = 7 // argument 3
	T0   Reg = 8 // caller-saved temporaries T0-T7
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved S0-S7
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26 // kernel reserved
	K1   Reg = 27
	GP   Reg = 28 // global pointer: base of the small-data area
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

var intRegNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegName returns the canonical assembly name ("$sp", "$t0") of an integer
// register.
func RegName(r Reg) string {
	if int(r) < len(intRegNames) {
		return "$" + intRegNames[r]
	}
	return fmt.Sprintf("$r%d", r)
}

// FRegName returns the assembly name ("$f12") of a floating-point register.
func FRegName(r Reg) string { return fmt.Sprintf("$f%d", r) }

// RegByName maps an assembly register name (without the '$') to its
// number. It accepts both symbolic ("sp") and numeric ("29") names.
func RegByName(name string) (Reg, bool) {
	for i, n := range intRegNames {
		if n == name {
			return Reg(i), true
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "%d", &n); err == nil && n >= 0 && n < 32 {
		return Reg(n), true
	}
	return 0, false
}

// Op identifies an operation of the ISA.
type Op uint8

// Operations. The zero value is NOP.
const (
	NOP Op = iota

	// R-type integer arithmetic and logic.
	SLL  // rd = rt << shamt
	SRL  // rd = rt >> shamt (logical)
	SRA  // rd = rt >> shamt (arithmetic)
	SLLV // rd = rt << rs
	SRLV // rd = rt >> rs (logical)
	SRAV // rd = rt >> rs (arithmetic)
	ADD  // rd = rs + rt (no trap on overflow in this ISA)
	ADDU // rd = rs + rt
	SUB  // rd = rs - rt
	SUBU // rd = rs - rt
	AND  // rd = rs & rt
	OR   // rd = rs | rt
	XOR  // rd = rs ^ rt
	NOR  // rd = ^(rs | rt)
	SLT  // rd = (rs < rt) signed
	SLTU // rd = (rs < rt) unsigned
	MUL  // rd = rs * rt (MIPS32 SPECIAL2)
	MULT // hi:lo = rs * rt signed
	DIV  // lo = rs / rt, hi = rs % rt (signed)
	DIVU // lo, hi unsigned
	MFHI // rd = hi
	MFLO // rd = lo

	// Control transfer.
	JR      // pc = rs
	JALR    // rd = pc+4; pc = rs
	J       // pc = target
	JAL     // ra = pc+4; pc = target
	BEQ     // if rs == rt branch
	BNE     // if rs != rt branch
	BLEZ    // if rs <= 0 branch
	BGTZ    // if rs > 0 branch
	BLTZ    // if rs < 0 branch
	BGEZ    // if rs >= 0 branch
	SYSCALL // system call; service number in $v0

	// I-type arithmetic and logic.
	ADDI  // rt = rs + imm
	ADDIU // rt = rs + imm
	SLTI  // rt = (rs < imm) signed
	SLTIU // rt = (rs < imm) unsigned
	ANDI  // rt = rs & uimm
	ORI   // rt = rs | uimm
	XORI  // rt = rs ^ uimm
	LUI   // rt = imm << 16

	// Memory access. rt is the data register, rs the base.
	LB  // load byte, sign-extend
	LH  // load half, sign-extend
	LW  // load word
	LBU // load byte, zero-extend
	LHU // load half, zero-extend
	SB  // store byte
	SH  // store half
	SW  // store word

	// COP1 single-precision floating point. Rd/Rs/Rt name FP registers
	// except where noted.
	LWC1  // load word to FP reg; Rt = FP dest, Rs = integer base
	SWC1  // store word from FP reg
	MFC1  // Rt(int) = Rd(fp)
	MTC1  // Rd(fp) = Rt(int)
	ADDS  // fd = fs + ft
	SUBS  // fd = fs - ft
	MULS  // fd = fs * ft
	DIVS  // fd = fs / ft
	MOVS  // fd = fs
	NEGS  // fd = -fs
	CVTSW // fd = float32(int32 bits of fs)
	CVTWS // fd = int32(float32 of fs), truncating
	CEQS  // cc = (fs == ft)
	CLTS  // cc = (fs < ft)
	CLES  // cc = (fs <= ft)
	BC1T  // branch if cc set
	BC1F  // branch if cc clear

	numOps // sentinel
)

var opNames = [numOps]string{
	NOP: "nop",
	SLL: "sll", SRL: "srl", SRA: "sra", SLLV: "sllv", SRLV: "srlv", SRAV: "srav",
	ADD: "add", ADDU: "addu", SUB: "sub", SUBU: "subu",
	AND: "and", OR: "or", XOR: "xor", NOR: "nor", SLT: "slt", SLTU: "sltu",
	MUL: "mul", MULT: "mult", DIV: "div", DIVU: "divu", MFHI: "mfhi", MFLO: "mflo",
	JR: "jr", JALR: "jalr", J: "j", JAL: "jal",
	BEQ: "beq", BNE: "bne", BLEZ: "blez", BGTZ: "bgtz", BLTZ: "bltz", BGEZ: "bgez",
	SYSCALL: "syscall",
	ADDI:    "addi", ADDIU: "addiu", SLTI: "slti", SLTIU: "sltiu",
	ANDI: "andi", ORI: "ori", XORI: "xori", LUI: "lui",
	LB: "lb", LH: "lh", LW: "lw", LBU: "lbu", LHU: "lhu", SB: "sb", SH: "sh", SW: "sw",
	LWC1: "lwc1", SWC1: "swc1", MFC1: "mfc1", MTC1: "mtc1",
	ADDS: "add.s", SUBS: "sub.s", MULS: "mul.s", DIVS: "div.s",
	MOVS: "mov.s", NEGS: "neg.s", CVTSW: "cvt.s.w", CVTWS: "cvt.w.s",
	CEQS: "c.eq.s", CLTS: "c.lt.s", CLES: "c.le.s", BC1T: "bc1t", BC1F: "bc1f",
}

// Name returns the assembly mnemonic of op.
func (op Op) Name() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

// OpByName maps a mnemonic to its Op.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name && n != "" {
			return Op(op), true
		}
	}
	return 0, false
}

// Inst is one decoded instruction.
//
// Field usage by format:
//
//   - Three-register ALU ops: Rd = Rs op Rt.
//   - Shifts by immediate (SLL/SRL/SRA): Rd = Rt shift Imm.
//   - I-type ALU ops: Rt = Rs op Imm.
//   - Loads/stores: Rt is the data register (FP register for LWC1/SWC1),
//     Rs the integer base, Imm the byte offset.
//   - Branches: Imm is the signed word offset from the instruction after
//     the branch (see Inst.BranchTarget).
//   - J/JAL: Imm holds target>>2 (the 26-bit instruction index).
//   - COP1 arithmetic: Rd=fd, Rs=fs, Rt=ft, all FP registers.
//   - MFC1/MTC1: Rt is the integer register, Rd the FP register.
type Inst struct {
	Op         Op
	Rd, Rs, Rt Reg
	Imm        int32
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool {
	switch i.Op {
	case LB, LH, LW, LBU, LHU, LWC1:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool {
	switch i.Op {
	case SB, SH, SW, SWC1:
		return true
	}
	return false
}

// MemBytes returns the access width of a load or store, or 0.
func (i Inst) MemBytes() int {
	switch i.Op {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, SW, LWC1, SWC1:
		return 4
	}
	return 0
}

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool {
	switch i.Op {
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, BC1T, BC1F:
		return true
	}
	return false
}

// IsJump reports whether the instruction is an unconditional control
// transfer (J, JR, JAL, JALR).
func (i Inst) IsJump() bool {
	switch i.Op {
	case J, JR, JAL, JALR:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a function call.
func (i Inst) IsCall() bool { return i.Op == JAL || i.Op == JALR }

// IsReturn reports whether the instruction is the conventional function
// return (jr $ra).
func (i Inst) IsReturn() bool { return i.Op == JR && i.Rs == RA }

// EndsBlock reports whether the instruction terminates a basic block.
func (i Inst) EndsBlock() bool { return i.IsBranch() || i.IsJump() || i.Op == SYSCALL }

// BranchTarget returns the target address of a branch at address pc.
func (i Inst) BranchTarget(pc uint32) uint32 {
	return pc + 4 + uint32(i.Imm)<<2
}

// JumpTarget returns the absolute target of a J or JAL at address pc.
func (i Inst) JumpTarget(pc uint32) uint32 {
	return (pc+4)&0xF0000000 | uint32(i.Imm)<<2
}

// Defs returns the integer registers written by the instruction.
// FP register definitions are not tracked: address computation, the only
// consumer of def-use information, is integer-only.
func (i Inst) Defs() []Reg {
	switch i.Op {
	case SLL, SRL, SRA, SLLV, SRLV, SRAV, ADD, ADDU, SUB, SUBU,
		AND, OR, XOR, NOR, SLT, SLTU, MUL, MFHI, MFLO:
		return []Reg{i.Rd}
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI, LUI,
		LB, LH, LW, LBU, LHU:
		return []Reg{i.Rt}
	case MFC1:
		return []Reg{i.Rt}
	case JAL:
		return []Reg{RA}
	case JALR:
		return []Reg{i.Rd}
	}
	return nil
}

// Uses returns the integer registers read by the instruction.
func (i Inst) Uses() []Reg {
	switch i.Op {
	case SLL, SRL, SRA:
		return []Reg{i.Rt}
	case SLLV, SRLV, SRAV, ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR,
		SLT, SLTU, MUL, MULT, DIV, DIVU:
		return []Reg{i.Rs, i.Rt}
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI:
		return []Reg{i.Rs}
	case LB, LH, LW, LBU, LHU, LWC1:
		return []Reg{i.Rs}
	case SB, SH, SW:
		return []Reg{i.Rs, i.Rt}
	case SWC1:
		return []Reg{i.Rs}
	case BEQ, BNE:
		return []Reg{i.Rs, i.Rt}
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return []Reg{i.Rs}
	case JR, JALR:
		return []Reg{i.Rs}
	case MTC1:
		return []Reg{i.Rt}
	}
	return nil
}

// String renders the instruction in assembly syntax. Branch and jump
// targets are rendered as raw offsets/indices; use Disasm for
// address-aware rendering.
func (i Inst) String() string {
	switch i.Op {
	case NOP, SYSCALL:
		return i.Op.Name()
	case SLL, SRL, SRA:
		return fmt.Sprintf("%s %s, %s, %d", i.Op.Name(), RegName(i.Rd), RegName(i.Rt), i.Imm)
	case SLLV, SRLV, SRAV:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), RegName(i.Rd), RegName(i.Rt), RegName(i.Rs))
	case ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU, MUL:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
	case MULT, DIV, DIVU:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), RegName(i.Rs), RegName(i.Rt))
	case MFHI, MFLO:
		return fmt.Sprintf("%s %s", i.Op.Name(), RegName(i.Rd))
	case JR:
		return fmt.Sprintf("jr %s", RegName(i.Rs))
	case JALR:
		return fmt.Sprintf("jalr %s, %s", RegName(i.Rd), RegName(i.Rs))
	case J, JAL:
		return fmt.Sprintf("%s 0x%x", i.Op.Name(), uint32(i.Imm)<<2)
	case BEQ, BNE:
		return fmt.Sprintf("%s %s, %s, %d", i.Op.Name(), RegName(i.Rs), RegName(i.Rt), i.Imm)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return fmt.Sprintf("%s %s, %d", i.Op.Name(), RegName(i.Rs), i.Imm)
	case BC1T, BC1F:
		return fmt.Sprintf("%s %d", i.Op.Name(), i.Imm)
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op.Name(), RegName(i.Rt), RegName(i.Rs), i.Imm)
	case LUI:
		return fmt.Sprintf("lui %s, %d", RegName(i.Rt), i.Imm)
	case LB, LH, LW, LBU, LHU, SB, SH, SW:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op.Name(), RegName(i.Rt), i.Imm, RegName(i.Rs))
	case LWC1, SWC1:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op.Name(), FRegName(i.Rt), i.Imm, RegName(i.Rs))
	case MFC1, MTC1:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), RegName(i.Rt), FRegName(i.Rd))
	case ADDS, SUBS, MULS, DIVS:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), FRegName(i.Rd), FRegName(i.Rs), FRegName(i.Rt))
	case MOVS, NEGS, CVTSW, CVTWS:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), FRegName(i.Rd), FRegName(i.Rs))
	case CEQS, CLTS, CLES:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), FRegName(i.Rs), FRegName(i.Rt))
	}
	return i.Op.Name()
}

// Package isa defines the MIPS-like 32-bit instruction set used throughout
// the repository: register names, opcodes, a decoded instruction
// representation, and binary encoding/decoding of the R/I/J/COP1 formats.
//
// The ISA is a close subset of MIPS I plus the MIPS32 mul instruction and
// single-precision COP1 arithmetic. Unlike real MIPS there are no branch
// delay slots: a taken branch transfers control directly to its target.
package isa

import "fmt"

// Reg is an integer or floating-point register number (0-31). Whether a
// Reg names the integer or the FP file depends on the instruction field it
// appears in; see the comments on Inst.
type Reg uint8

// Integer register conventions (MIPS o32).
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary
	V0   Reg = 2 // return value 0
	V1   Reg = 3 // return value 1
	A0   Reg = 4 // argument 0
	A1   Reg = 5 // argument 1
	A2   Reg = 6 // argument 2
	A3   Reg = 7 // argument 3
	T0   Reg = 8 // caller-saved temporaries T0-T7
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved S0-S7
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26 // kernel reserved
	K1   Reg = 27
	GP   Reg = 28 // global pointer: base of the small-data area
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

var intRegNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegName returns the canonical assembly name ("$sp", "$t0") of an integer
// register.
func RegName(r Reg) string {
	if int(r) < len(intRegNames) {
		return "$" + intRegNames[r]
	}
	return fmt.Sprintf("$r%d", r)
}

// FRegName returns the assembly name ("$f12") of a floating-point register.
func FRegName(r Reg) string { return fmt.Sprintf("$f%d", r) }

// RegByName maps an assembly register name (without the '$') to its
// number. It accepts both symbolic ("sp") and numeric ("29") names.
func RegByName(name string) (Reg, bool) {
	for i, n := range intRegNames {
		if n == name {
			return Reg(i), true
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "%d", &n); err == nil && n >= 0 && n < 32 {
		return Reg(n), true
	}
	return 0, false
}

// Op identifies an operation of the ISA.
type Op uint8

// Operations. The zero value is NOP.
const (
	NOP Op = iota

	// R-type integer arithmetic and logic.
	SLL  // rd = rt << shamt
	SRL  // rd = rt >> shamt (logical)
	SRA  // rd = rt >> shamt (arithmetic)
	SLLV // rd = rt << rs
	SRLV // rd = rt >> rs (logical)
	SRAV // rd = rt >> rs (arithmetic)
	ADD  // rd = rs + rt (no trap on overflow in this ISA)
	ADDU // rd = rs + rt
	SUB  // rd = rs - rt
	SUBU // rd = rs - rt
	AND  // rd = rs & rt
	OR   // rd = rs | rt
	XOR  // rd = rs ^ rt
	NOR  // rd = ^(rs | rt)
	SLT  // rd = (rs < rt) signed
	SLTU // rd = (rs < rt) unsigned
	MUL  // rd = rs * rt (MIPS32 SPECIAL2)
	MULT // hi:lo = rs * rt signed
	DIV  // lo = rs / rt, hi = rs % rt (signed)
	DIVU // lo, hi unsigned
	MFHI // rd = hi
	MFLO // rd = lo

	// Control transfer.
	JR      // pc = rs
	JALR    // rd = pc+4; pc = rs
	J       // pc = target
	JAL     // ra = pc+4; pc = target
	BEQ     // if rs == rt branch
	BNE     // if rs != rt branch
	BLEZ    // if rs <= 0 branch
	BGTZ    // if rs > 0 branch
	BLTZ    // if rs < 0 branch
	BGEZ    // if rs >= 0 branch
	SYSCALL // system call; service number in $v0

	// I-type arithmetic and logic.
	ADDI  // rt = rs + imm
	ADDIU // rt = rs + imm
	SLTI  // rt = (rs < imm) signed
	SLTIU // rt = (rs < imm) unsigned
	ANDI  // rt = rs & uimm
	ORI   // rt = rs | uimm
	XORI  // rt = rs ^ uimm
	LUI   // rt = imm << 16

	// Memory access. rt is the data register, rs the base.
	LB  // load byte, sign-extend
	LH  // load half, sign-extend
	LW  // load word
	LBU // load byte, zero-extend
	LHU // load half, zero-extend
	SB  // store byte
	SH  // store half
	SW  // store word

	// COP1 single-precision floating point. Rd/Rs/Rt name FP registers
	// except where noted.
	LWC1  // load word to FP reg; Rt = FP dest, Rs = integer base
	SWC1  // store word from FP reg
	MFC1  // Rt(int) = Rd(fp)
	MTC1  // Rd(fp) = Rt(int)
	ADDS  // fd = fs + ft
	SUBS  // fd = fs - ft
	MULS  // fd = fs * ft
	DIVS  // fd = fs / ft
	MOVS  // fd = fs
	NEGS  // fd = -fs
	CVTSW // fd = float32(int32 bits of fs)
	CVTWS // fd = int32(float32 of fs), truncating
	CEQS  // cc = (fs == ft)
	CLTS  // cc = (fs < ft)
	CLES  // cc = (fs <= ft)
	BC1T  // branch if cc set
	BC1F  // branch if cc clear

	// ARM-like backend operations. The ARM backend is two-operand: the
	// destination of a binary ALU op is also its left operand, compares
	// go through an explicit compare state rather than result registers,
	// and word loads/stores come in pre/post-indexed forms that write
	// the updated address back to the base register. Shared indices:
	// Rd is the destination (and left source) of ALU ops, Rt the right
	// source; memory ops keep the MIPS field convention (Rt data,
	// Rs base, Imm offset).

	AMOV  // rd = rs
	AMVN  // rd = ^rs
	AADD  // rd = rd + rt
	ASUB  // rd = rd - rt
	ARSB  // rd = rt - rd (reverse subtract)
	AMUL  // rd = rd * rt
	AAND  // rd = rd & rt
	AORR  // rd = rd | rt
	AEOR  // rd = rd ^ rt
	ALSL  // rd = rd << (rt & 31)
	ALSR  // rd = rd >> (rt & 31) (logical)
	AASR  // rd = rd >> (rt & 31) (arithmetic)
	AADDI // rd = rd + imm (sign-extended)
	AANDI // rd = rd & uimm16
	AORRI // rd = rd | uimm16
	AEORI // rd = rd ^ uimm16
	ALSLI // rd = rd << imm
	ALSRI // rd = rd >> imm (logical)
	AASRI // rd = rd >> imm (arithmetic)
	AMOVI // rd = imm (sign-extended)
	AMOVW // rd = uimm16 (zero-extended)
	AMOVT // rd = imm<<16 | rd&0xffff
	ACMP  // compare state = (rs, rt)
	ACMPI // compare state = (rs, imm)

	ASETLT // rd = 1 if last compare was signed-less, else 0
	ASETLO // rd = 1 if last compare was unsigned-less, else 0

	ABEQ // branch if last compare was equal
	ABNE // branch if last compare was not equal
	ABLT // branch if signed-less
	ABGE // branch if signed-greater-or-equal
	ABGT // branch if signed-greater
	ABLE // branch if signed-less-or-equal
	AB   // pc-relative unconditional branch
	ABL  // call: lr = pc+4, pc-relative branch
	ABX  // pc = rs (return when rs is lr)
	ABLX // rd = pc+4; pc = rs (indirect call)
	ASVC // system call; service number in r2

	// ARM memory access. Rt is the data register, Rs the base.
	ALDR     // load word
	ALDRH    // load half, zero-extend
	ALDRSH   // load half, sign-extend
	ALDRB    // load byte, zero-extend
	ALDRSB   // load byte, sign-extend
	ASTR     // store word
	ASTRH    // store half
	ASTRB    // store byte
	ALDRPRE  // rs += imm; rt = mem32[rs] (pre-indexed, writeback)
	ALDRPOST // rt = mem32[rs]; rs += imm (post-indexed, writeback)
	ASTRPRE  // rs += imm; mem32[rs] = rt
	ASTRPOST // mem32[rs] = rt; rs += imm
	AVLDR    // load word to FP reg; Rt = FP dest, Rs = integer base
	AVSTR    // store word from FP reg

	numOps // sentinel
)

var opNames = [numOps]string{
	NOP: "nop",
	SLL: "sll", SRL: "srl", SRA: "sra", SLLV: "sllv", SRLV: "srlv", SRAV: "srav",
	ADD: "add", ADDU: "addu", SUB: "sub", SUBU: "subu",
	AND: "and", OR: "or", XOR: "xor", NOR: "nor", SLT: "slt", SLTU: "sltu",
	MUL: "mul", MULT: "mult", DIV: "div", DIVU: "divu", MFHI: "mfhi", MFLO: "mflo",
	JR: "jr", JALR: "jalr", J: "j", JAL: "jal",
	BEQ: "beq", BNE: "bne", BLEZ: "blez", BGTZ: "bgtz", BLTZ: "bltz", BGEZ: "bgez",
	SYSCALL: "syscall",
	ADDI:    "addi", ADDIU: "addiu", SLTI: "slti", SLTIU: "sltiu",
	ANDI: "andi", ORI: "ori", XORI: "xori", LUI: "lui",
	LB: "lb", LH: "lh", LW: "lw", LBU: "lbu", LHU: "lhu", SB: "sb", SH: "sh", SW: "sw",
	LWC1: "lwc1", SWC1: "swc1", MFC1: "mfc1", MTC1: "mtc1",
	ADDS: "add.s", SUBS: "sub.s", MULS: "mul.s", DIVS: "div.s",
	MOVS: "mov.s", NEGS: "neg.s", CVTSW: "cvt.s.w", CVTWS: "cvt.w.s",
	CEQS: "c.eq.s", CLTS: "c.lt.s", CLES: "c.le.s", BC1T: "bc1t", BC1F: "bc1f",

	// ARM ops are namespaced "arm." in the mnemonic table so OpByName
	// stays unambiguous where the two ISAs share a spelling (add, sub,
	// mul, beq, ...). String() strips the prefix when rendering.
	AMOV: "arm.mov", AMVN: "arm.mvn",
	AADD: "arm.add", ASUB: "arm.sub", ARSB: "arm.rsb", AMUL: "arm.mul",
	AAND: "arm.and", AORR: "arm.orr", AEOR: "arm.eor",
	ALSL: "arm.lsl", ALSR: "arm.lsr", AASR: "arm.asr",
	AADDI: "arm.addi", AANDI: "arm.andi", AORRI: "arm.orri", AEORI: "arm.eori",
	ALSLI: "arm.lsli", ALSRI: "arm.lsri", AASRI: "arm.asri",
	AMOVI: "arm.movi", AMOVW: "arm.movw", AMOVT: "arm.movt",
	ACMP: "arm.cmp", ACMPI: "arm.cmpi", ASETLT: "arm.setlt", ASETLO: "arm.setlo",
	ABEQ: "arm.beq", ABNE: "arm.bne", ABLT: "arm.blt", ABGE: "arm.bge",
	ABGT: "arm.bgt", ABLE: "arm.ble",
	AB: "arm.b", ABL: "arm.bl", ABX: "arm.bx", ABLX: "arm.blx", ASVC: "arm.svc",
	ALDR: "arm.ldr", ALDRH: "arm.ldrh", ALDRSH: "arm.ldrsh",
	ALDRB: "arm.ldrb", ALDRSB: "arm.ldrsb",
	ASTR: "arm.str", ASTRH: "arm.strh", ASTRB: "arm.strb",
	ALDRPRE: "arm.ldr.pre", ALDRPOST: "arm.ldr.post",
	ASTRPRE: "arm.str.pre", ASTRPOST: "arm.str.post",
	AVLDR: "arm.vldr", AVSTR: "arm.vstr",
}

// armRegNames spells the ARM backend's integer registers: plain rN for
// the allocatable file, with role names for the hardwired zero, the
// scratch/intra-procedure register, and the stack/frame/link trio.
var armRegNames = [32]string{
	"zr", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
	"r16", "r17", "r18", "r19", "r20", "r21", "r22", "r23",
	"r24", "r25", "r26", "r27", "ip", "sp", "fp", "lr",
}

// ARMRegName returns the ARM backend's spelling of an integer register.
func ARMRegName(r Reg) string {
	if int(r) < len(armRegNames) {
		return armRegNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

// ARMFRegName returns the ARM backend's spelling of an FP register.
func ARMFRegName(r Reg) string { return fmt.Sprintf("s%d", r) }

// Name returns the assembly mnemonic of op.
func (op Op) Name() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

// OpByName maps a mnemonic to its Op.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name && n != "" {
			return Op(op), true
		}
	}
	return 0, false
}

// Inst is one decoded instruction.
//
// Field usage by format:
//
//   - Three-register ALU ops: Rd = Rs op Rt.
//   - Shifts by immediate (SLL/SRL/SRA): Rd = Rt shift Imm.
//   - I-type ALU ops: Rt = Rs op Imm.
//   - Loads/stores: Rt is the data register (FP register for LWC1/SWC1),
//     Rs the integer base, Imm the byte offset.
//   - Branches: Imm is the signed word offset from the instruction after
//     the branch (see Inst.BranchTarget).
//   - J/JAL: Imm holds target>>2 (the 26-bit instruction index).
//   - COP1 arithmetic: Rd=fd, Rs=fs, Rt=ft, all FP registers.
//   - MFC1/MTC1: Rt is the integer register, Rd the FP register.
type Inst struct {
	Op         Op
	Rd, Rs, Rt Reg
	Imm        int32
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool {
	switch i.Op {
	case LB, LH, LW, LBU, LHU, LWC1,
		ALDR, ALDRH, ALDRSH, ALDRB, ALDRSB, ALDRPRE, ALDRPOST, AVLDR:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool {
	switch i.Op {
	case SB, SH, SW, SWC1, ASTR, ASTRH, ASTRB, ASTRPRE, ASTRPOST, AVSTR:
		return true
	}
	return false
}

// MemBytes returns the access width of a load or store, or 0.
func (i Inst) MemBytes() int {
	switch i.Op {
	case LB, LBU, SB, ALDRB, ALDRSB, ASTRB:
		return 1
	case LH, LHU, SH, ALDRH, ALDRSH, ASTRH:
		return 2
	case LW, SW, LWC1, SWC1,
		ALDR, ASTR, ALDRPRE, ALDRPOST, ASTRPRE, ASTRPOST, AVLDR, AVSTR:
		return 4
	}
	return 0
}

// IsFPMem reports whether a load or store moves an FP register
// (the data register names the FP file, not the integer file).
func (i Inst) IsFPMem() bool {
	switch i.Op {
	case LWC1, SWC1, AVLDR, AVSTR:
		return true
	}
	return false
}

// MemOffset returns the offset the effective address of a load or
// store adds to its base register: Imm for offset and pre-indexed
// addressing, 0 for post-indexed (the base is used unmodified and the
// increment happens after the access).
func (i Inst) MemOffset() int32 {
	switch i.Op {
	case ALDRPOST, ASTRPOST:
		return 0
	}
	return i.Imm
}

// WritesBack reports whether a load or store writes the updated
// effective address back to its base register.
func (i Inst) WritesBack() bool {
	switch i.Op {
	case ALDRPRE, ALDRPOST, ASTRPRE, ASTRPOST:
		return true
	}
	return false
}

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool {
	switch i.Op {
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, BC1T, BC1F,
		ABEQ, ABNE, ABLT, ABGE, ABGT, ABLE:
		return true
	}
	return false
}

// IsJump reports whether the instruction is an unconditional control
// transfer (J, JR, JAL, JALR and the ARM B/BL/BX/BLX family).
func (i Inst) IsJump() bool {
	switch i.Op {
	case J, JR, JAL, JALR, AB, ABL, ABX, ABLX:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a function call.
func (i Inst) IsCall() bool {
	switch i.Op {
	case JAL, JALR, ABL, ABLX:
		return true
	}
	return false
}

// IsReturn reports whether the instruction is the conventional function
// return (jr $ra on MIPS, bx lr on ARM; both use register 31).
func (i Inst) IsReturn() bool { return (i.Op == JR || i.Op == ABX) && i.Rs == RA }

// IsSyscall reports whether the instruction traps to a system service.
func (i Inst) IsSyscall() bool { return i.Op == SYSCALL || i.Op == ASVC }

// EndsBlock reports whether the instruction terminates a basic block.
func (i Inst) EndsBlock() bool { return i.IsBranch() || i.IsJump() || i.IsSyscall() }

// BranchTarget returns the target address of a branch at address pc.
func (i Inst) BranchTarget(pc uint32) uint32 {
	return pc + 4 + uint32(i.Imm)<<2
}

// JumpTarget returns the absolute target of a J or JAL at address pc.
func (i Inst) JumpTarget(pc uint32) uint32 {
	return (pc+4)&0xF0000000 | uint32(i.Imm)<<2
}

// DirectJumpTarget returns the statically-known target of a direct
// unconditional transfer at address pc: J/JAL use the absolute 26-bit
// index encoding, AB/ABL the pc-relative branch encoding. The second
// result is false for indirect jumps and non-jumps.
func (i Inst) DirectJumpTarget(pc uint32) (uint32, bool) {
	switch i.Op {
	case J, JAL:
		return i.JumpTarget(pc), true
	case AB, ABL:
		return i.BranchTarget(pc), true
	}
	return 0, false
}

// Defs returns the integer registers written by the instruction.
// FP register definitions are not tracked: address computation, the only
// consumer of def-use information, is integer-only.
func (i Inst) Defs() []Reg {
	switch i.Op {
	case SLL, SRL, SRA, SLLV, SRLV, SRAV, ADD, ADDU, SUB, SUBU,
		AND, OR, XOR, NOR, SLT, SLTU, MUL, MFHI, MFLO:
		return []Reg{i.Rd}
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI, LUI,
		LB, LH, LW, LBU, LHU:
		return []Reg{i.Rt}
	case MFC1:
		return []Reg{i.Rt}
	case JAL:
		return []Reg{RA}
	case JALR:
		return []Reg{i.Rd}
	case AMOV, AMVN, AADD, ASUB, ARSB, AMUL, AAND, AORR, AEOR,
		ALSL, ALSR, AASR, AADDI, AANDI, AORRI, AEORI, ALSLI, ALSRI, AASRI,
		AMOVI, AMOVW, AMOVT, ASETLT, ASETLO:
		return []Reg{i.Rd}
	case ALDR, ALDRH, ALDRSH, ALDRB, ALDRSB:
		return []Reg{i.Rt}
	case ALDRPRE, ALDRPOST:
		return []Reg{i.Rt, i.Rs}
	case ASTRPRE, ASTRPOST:
		return []Reg{i.Rs}
	case ABL:
		return []Reg{RA}
	case ABLX:
		return []Reg{i.Rd}
	}
	return nil
}

// Uses returns the integer registers read by the instruction.
func (i Inst) Uses() []Reg {
	switch i.Op {
	case SLL, SRL, SRA:
		return []Reg{i.Rt}
	case SLLV, SRLV, SRAV, ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR,
		SLT, SLTU, MUL, MULT, DIV, DIVU:
		return []Reg{i.Rs, i.Rt}
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI:
		return []Reg{i.Rs}
	case LB, LH, LW, LBU, LHU, LWC1:
		return []Reg{i.Rs}
	case SB, SH, SW:
		return []Reg{i.Rs, i.Rt}
	case SWC1:
		return []Reg{i.Rs}
	case BEQ, BNE:
		return []Reg{i.Rs, i.Rt}
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return []Reg{i.Rs}
	case JR, JALR:
		return []Reg{i.Rs}
	case MTC1:
		return []Reg{i.Rt}
	case AMOV, AMVN:
		return []Reg{i.Rs}
	case AADD, ASUB, ARSB, AMUL, AAND, AORR, AEOR, ALSL, ALSR, AASR:
		return []Reg{i.Rd, i.Rt}
	case AADDI, AANDI, AORRI, AEORI, ALSLI, ALSRI, AASRI, AMOVT:
		return []Reg{i.Rd}
	case ACMP:
		return []Reg{i.Rs, i.Rt}
	case ACMPI:
		return []Reg{i.Rs}
	case ALDR, ALDRH, ALDRSH, ALDRB, ALDRSB, ALDRPRE, ALDRPOST, AVLDR:
		return []Reg{i.Rs}
	case ASTR, ASTRH, ASTRB, ASTRPRE, ASTRPOST:
		return []Reg{i.Rs, i.Rt}
	case AVSTR:
		return []Reg{i.Rs}
	case ABX, ABLX:
		return []Reg{i.Rs}
	}
	return nil
}

// String renders the instruction in assembly syntax. Branch and jump
// targets are rendered as raw offsets/indices; use Disasm for
// address-aware rendering.
func (i Inst) String() string {
	switch i.Op {
	case NOP, SYSCALL:
		return i.Op.Name()
	case SLL, SRL, SRA:
		return fmt.Sprintf("%s %s, %s, %d", i.Op.Name(), RegName(i.Rd), RegName(i.Rt), i.Imm)
	case SLLV, SRLV, SRAV:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), RegName(i.Rd), RegName(i.Rt), RegName(i.Rs))
	case ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU, MUL:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
	case MULT, DIV, DIVU:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), RegName(i.Rs), RegName(i.Rt))
	case MFHI, MFLO:
		return fmt.Sprintf("%s %s", i.Op.Name(), RegName(i.Rd))
	case JR:
		return fmt.Sprintf("jr %s", RegName(i.Rs))
	case JALR:
		return fmt.Sprintf("jalr %s, %s", RegName(i.Rd), RegName(i.Rs))
	case J, JAL:
		return fmt.Sprintf("%s 0x%x", i.Op.Name(), uint32(i.Imm)<<2)
	case BEQ, BNE:
		return fmt.Sprintf("%s %s, %s, %d", i.Op.Name(), RegName(i.Rs), RegName(i.Rt), i.Imm)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return fmt.Sprintf("%s %s, %d", i.Op.Name(), RegName(i.Rs), i.Imm)
	case BC1T, BC1F:
		return fmt.Sprintf("%s %d", i.Op.Name(), i.Imm)
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op.Name(), RegName(i.Rt), RegName(i.Rs), i.Imm)
	case LUI:
		return fmt.Sprintf("lui %s, %d", RegName(i.Rt), i.Imm)
	case LB, LH, LW, LBU, LHU, SB, SH, SW:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op.Name(), RegName(i.Rt), i.Imm, RegName(i.Rs))
	case LWC1, SWC1:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op.Name(), FRegName(i.Rt), i.Imm, RegName(i.Rs))
	case MFC1, MTC1:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), RegName(i.Rt), FRegName(i.Rd))
	case ADDS, SUBS, MULS, DIVS:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), FRegName(i.Rd), FRegName(i.Rs), FRegName(i.Rt))
	case MOVS, NEGS, CVTSW, CVTWS:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), FRegName(i.Rd), FRegName(i.Rs))
	case CEQS, CLTS, CLES:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), FRegName(i.Rs), FRegName(i.Rt))
	case AMOV, AMVN:
		return fmt.Sprintf("%s %s, %s", armMnemonic(i.Op), ARMRegName(i.Rd), ARMRegName(i.Rs))
	case AADD, ASUB, ARSB, AMUL, AAND, AORR, AEOR, ALSL, ALSR, AASR:
		return fmt.Sprintf("%s %s, %s", armMnemonic(i.Op), ARMRegName(i.Rd), ARMRegName(i.Rt))
	case AADDI, AANDI, AORRI, AEORI, ALSLI, ALSRI, AASRI:
		// Immediate forms render under the base mnemonic, ARM-style.
		return fmt.Sprintf("%s %s, #%d", armMnemonic(i.Op)[:3], ARMRegName(i.Rd), i.Imm)
	case AMOVI, AMOVW, AMOVT:
		return fmt.Sprintf("%s %s, #%d", armMnemonic(i.Op), ARMRegName(i.Rd), i.Imm)
	case ACMP:
		return fmt.Sprintf("cmp %s, %s", ARMRegName(i.Rs), ARMRegName(i.Rt))
	case ACMPI:
		return fmt.Sprintf("cmp %s, #%d", ARMRegName(i.Rs), i.Imm)
	case ASETLT, ASETLO:
		return fmt.Sprintf("%s %s", armMnemonic(i.Op), ARMRegName(i.Rd))
	case ABEQ, ABNE, ABLT, ABGE, ABGT, ABLE, AB:
		return fmt.Sprintf("%s %d", armMnemonic(i.Op), i.Imm)
	case ABL:
		return fmt.Sprintf("bl %d", i.Imm)
	case ABX:
		return fmt.Sprintf("bx %s", ARMRegName(i.Rs))
	case ABLX:
		return fmt.Sprintf("blx %s, %s", ARMRegName(i.Rd), ARMRegName(i.Rs))
	case ASVC:
		return "svc"
	case ALDR, ALDRH, ALDRSH, ALDRB, ALDRSB, ASTR, ASTRH, ASTRB:
		return fmt.Sprintf("%s %s, [%s, #%d]", armMnemonic(i.Op), ARMRegName(i.Rt), ARMRegName(i.Rs), i.Imm)
	case ALDRPRE, ASTRPRE:
		return fmt.Sprintf("%s %s, [%s, #%d]!", armMnemonic(i.Op)[:3], ARMRegName(i.Rt), ARMRegName(i.Rs), i.Imm)
	case ALDRPOST, ASTRPOST:
		return fmt.Sprintf("%s %s, [%s], #%d", armMnemonic(i.Op)[:3], ARMRegName(i.Rt), ARMRegName(i.Rs), i.Imm)
	case AVLDR, AVSTR:
		return fmt.Sprintf("%s %s, [%s, #%d]", armMnemonic(i.Op), ARMFRegName(i.Rt), ARMRegName(i.Rs), i.Imm)
	}
	return i.Op.Name()
}

// armMnemonic strips the "arm." namespace off an ARM op's table name.
func armMnemonic(op Op) string { return opNames[op][len("arm."):] }

package arm

import (
	"math/rand"
	"testing"
	"testing/quick"

	. "delinq/internal/isa"
)

// sampleInsts returns a representative instruction of every encodable
// ARM layout: mem (with pre/post-indexed writeback), r+i16 signed and
// unsigned, 2reg, imm24, and the shared hi/lo and FP forms.
func sampleInsts() []Inst {
	return []Inst{
		{Op: NOP},
		{Op: AMOV, Rd: 1, Rs: 2},
		{Op: AMVN, Rd: 3, Rs: 4},
		{Op: AADD, Rd: 1, Rt: 2},
		{Op: ASUB, Rd: 5, Rt: 6},
		{Op: ARSB, Rd: 7, Rt: 8},
		{Op: AMUL, Rd: 9, Rt: 10},
		{Op: AAND, Rd: 11, Rt: 12},
		{Op: AORR, Rd: 13, Rt: 14},
		{Op: AEOR, Rd: 15, Rt: 16},
		{Op: ALSL, Rd: 17, Rt: 18},
		{Op: ALSR, Rd: 19, Rt: 20},
		{Op: AASR, Rd: 21, Rt: 22},
		{Op: AADDI, Rd: 1, Imm: -32768},
		{Op: AANDI, Rd: 2, Imm: 0xffff},
		{Op: AORRI, Rd: 3, Imm: 0x1234},
		{Op: AEORI, Rd: 4, Imm: 0xabc},
		{Op: ALSLI, Rd: 5, Imm: 31},
		{Op: ALSRI, Rd: 6, Imm: 1},
		{Op: AASRI, Rd: 7, Imm: 16},
		{Op: AMOVI, Rd: 8, Imm: -1},
		{Op: AMOVW, Rd: 9, Imm: 0xffff},
		{Op: AMOVT, Rd: 10, Imm: 0x1000},
		{Op: ACMP, Rs: 1, Rt: 2},
		{Op: ACMPI, Rs: 3, Imm: -100},
		{Op: ASETLT, Rd: 4},
		{Op: ASETLO, Rd: 5},
		{Op: ABEQ, Imm: -4},
		{Op: ABNE, Imm: 12},
		{Op: ABLT, Imm: 3},
		{Op: ABGE, Imm: -1},
		{Op: ABGT, Imm: 7},
		{Op: ABLE, Imm: -7},
		{Op: AB, Imm: 0x100},
		{Op: ABL, Imm: -0x200},
		{Op: ABX, Rs: 31},
		{Op: ABLX, Rd: 31, Rs: 12},
		{Op: ASVC},
		{Op: ALDR, Rt: 1, Rs: 29, Imm: -16},
		{Op: ALDRH, Rt: 2, Rs: 29, Imm: 8},
		{Op: ALDRSH, Rt: 3, Rs: 29, Imm: 6},
		{Op: ALDRB, Rt: 4, Rs: 29, Imm: 2},
		{Op: ALDRSB, Rt: 5, Rs: 29, Imm: 1},
		{Op: ASTR, Rt: 31, Rs: 29, Imm: 0},
		{Op: ASTRH, Rt: 6, Rs: 29, Imm: 2},
		{Op: ASTRB, Rt: 7, Rs: 29, Imm: 1},
		{Op: ALDRPRE, Rt: 8, Rs: 9, Imm: 4},
		{Op: ALDRPOST, Rt: 10, Rs: 11, Imm: 8},
		{Op: ASTRPRE, Rt: 12, Rs: 13, Imm: -4},
		{Op: ASTRPOST, Rt: 14, Rs: 15, Imm: 4},
		{Op: AVLDR, Rt: 4, Rs: 29, Imm: 20},
		{Op: AVSTR, Rt: 4, Rs: 29, Imm: 24},
		{Op: MULT, Rs: 1, Rt: 2},
		{Op: DIV, Rs: 3, Rt: 4},
		{Op: DIVU, Rs: 5, Rt: 6},
		{Op: MFHI, Rd: 7},
		{Op: MFLO, Rd: 8},
		{Op: MFC1, Rt: 9, Rd: 2},
		{Op: MTC1, Rt: 10, Rd: 2},
		{Op: ADDS, Rd: 0, Rs: 2, Rt: 4},
		{Op: SUBS, Rd: 6, Rs: 8, Rt: 10},
		{Op: MULS, Rd: 1, Rs: 3, Rt: 5},
		{Op: DIVS, Rd: 7, Rs: 9, Rt: 11},
		{Op: MOVS, Rd: 12, Rs: 13},
		{Op: NEGS, Rd: 14, Rs: 15},
		{Op: CVTSW, Rd: 0, Rs: 1},
		{Op: CVTWS, Rd: 2, Rs: 3},
		{Op: CEQS, Rs: 0, Rt: 2},
		{Op: CLTS, Rs: 4, Rt: 6},
		{Op: CLES, Rs: 8, Rt: 10},
		{Op: BC1T, Imm: 5},
		{Op: BC1F, Imm: -5},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, in := range sampleInsts() {
		word, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(word)
		if err != nil {
			t.Fatalf("Decode(%#08x) of %v: %v", word, in, err)
		}
		if out != in {
			t.Errorf("round trip of %v gave %v (word %#08x)", in, out, word)
		}
	}
}

// TestSampleCoversEveryOpcode: the sample set exercises the full opcode
// table, so a new op added to opcodeOrder without a round-trip sample
// fails here instead of going untested.
func TestSampleCoversEveryOpcode(t *testing.T) {
	seen := map[Op]bool{}
	for _, in := range sampleInsts() {
		seen[in.Op] = true
	}
	for _, op := range opcodeOrder {
		if !seen[op] {
			t.Errorf("opcode %v has no round-trip sample", op)
		}
	}
}

func TestDecodeUnknown(t *testing.T) {
	last := uint32(len(opcodeOrder)) // opcodes run 1..len; above is invalid
	bad := []uint32{
		(last + 1) << 24,
		0xff000000,
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded; want error", w)
		}
	}
}

// TestEncodeRejectsOutOfRange pins the immediate range checks per
// layout.
func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Inst{
		{Op: ALDR, Rt: 1, Rs: 2, Imm: 1 << 13},
		{Op: ASTR, Rt: 1, Rs: 2, Imm: -(1<<13 + 1)},
		{Op: AADDI, Rd: 1, Imm: 40000},
		{Op: AMOVW, Rd: 1, Imm: -1},
		{Op: ALSLI, Rd: 1, Imm: 32},
		{Op: AB, Imm: 1 << 23},
		{Op: LW, Rt: 1, Rs: 2}, // a MIPS-only op has no ARM encoding
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) succeeded; want error", in)
		}
	}
}

// TestQuickALURoundtrip exercises random register/immediate
// combinations of the common two-operand ALU and memory forms.
func TestQuickALURoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(op8 uint8, rd, rs, rt uint8, imm int16) bool {
		ops := []Op{AADD, ASUB, ARSB, AMUL, AAND, AORR, AEOR,
			AADDI, AMOVI, ACMPI, ALDR, ASTR, ALDRB, ASTRB,
			ALDRPRE, ALDRPOST, ASTRPRE, ASTRPOST}
		in := Inst{
			Op: ops[int(op8)%len(ops)],
			Rd: Reg(rd % 32), Rs: Reg(rs % 32), Rt: Reg(rt % 32),
			Imm: int32(imm),
		}
		switch in.Op {
		case AADD, ASUB, ARSB, AMUL, AAND, AORR, AEOR:
			in.Rs, in.Imm = 0, 0
		case AADDI, AMOVI:
			in.Rs, in.Rt = 0, 0
		case ACMPI:
			in.Rd, in.Rt = 0, 0
		default: // memory: rt/rs + signed imm14
			in.Rd = 0
			in.Imm = int32(imm) % 8192
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeEncodeIdempotent: any word that decodes must
// re-encode to a word that decodes to the same instruction (the
// canonical encoding may clear don't-care bits).
func TestQuickDecodeEncodeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 200000; i++ {
		w := rng.Uint32()
		in, err := Decode(w)
		if err != nil {
			continue
		}
		checked++
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %v (from %#08x) does not encode: %v", in, w, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("canonical word %#08x does not decode: %v", w2, err)
		}
		if in2 != in {
			t.Fatalf("%#08x -> %v -> %#08x -> %v", w, in, w2, in2)
		}
	}
	if checked < 1000 {
		t.Errorf("only %d random words decoded; generator too narrow", checked)
	}
}

package arm

import (
	"fmt"

	"delinq/internal/isa"
	"delinq/internal/isa/mips"
	"delinq/internal/obj"
)

// LowerImage rewrites an assembled MIPS image into the ARM backend's
// instruction set, producing a new image with ISA "arm". The rewrite
// is image-level: every MIPS instruction becomes one or more ARM
// instructions, branch and call targets are re-linked through an index
// map, and function symbols are rescaled to their new extents.
//
// The interesting transformations, in the order the issue cares about
// them:
//
//   - two-operand expansion: MIPS rd = rs OP rt becomes mov/OP pairs,
//     with reverse-subtract covering the rd==rt case of subtraction
//     and the ip scratch register covering shift-amount aliasing;
//   - compare/branch splitting: register comparisons move into an
//     explicit compare state (cmp; b<cond>, cmp; set<cond>);
//   - no globals register: $gp-relative accesses materialise the
//     absolute address (movw/movt), so what the pattern analysis saw
//     as GP leaves on MIPS become constant-address dereferences here;
//   - pre/post-index peephole: an address increment adjacent to a
//     word load or store of the same base fuses into one writeback
//     instruction, the addressing mode the pattern lattice must
//     recognise as a recurrence without a separate add.
func LowerImage(src *obj.Image) (dst *obj.Image, err error) {
	if src == nil {
		return nil, fmt.Errorf("arm: cannot lower nil image")
	}
	// The lowerer trusts a validated image; a hand-corrupted one (fuzzed
	// bytes that happen to decode) must surface as an error, not a crash.
	defer func() {
		if r := recover(); r != nil {
			dst, err = nil, fmt.Errorf("arm: lowering panic: %v", r)
		}
	}()
	if src.ISAName() != "mips" {
		return nil, fmt.Errorf("arm: cannot lower %q image", src.ISAName())
	}
	insts := make([]isa.Inst, len(src.Text))
	for i, w := range src.Text {
		in, err := mips.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("arm: lower pc %#x: %w", obj.TextBase+uint32(i)*4, err)
		}
		insts[i] = in
	}

	l := &lowerer{src: src, insts: insts, newIdx: make([]int, len(insts))}
	l.findLeaders()
	if err := l.lowerAll(); err != nil {
		return nil, err
	}
	if err := l.patchFixups(); err != nil {
		return nil, err
	}
	return l.buildImage()
}

type fixup struct {
	outIdx int // instruction in l.out whose Imm is a branch offset
	tgtIdx int // MIPS instruction index it must reach
}

type lowerer struct {
	src    *obj.Image
	insts  []isa.Inst
	leader map[int]bool
	out    []isa.Inst
	fixups []fixup
	newIdx []int
}

// findLeaders collects every MIPS instruction index that control can
// enter other than by fallthrough: the entry point, function starts,
// and all branch and direct-jump targets. The peephole never fuses
// across a leader — the fused pair must be reachable only as a unit.
func (l *lowerer) findLeaders() {
	l.leader = map[int]bool{}
	mark := func(addr uint32) {
		if addr >= obj.TextBase && addr < l.src.TextEnd() {
			l.leader[int((addr-obj.TextBase)/4)] = true
		}
	}
	mark(l.src.Entry)
	for i := range l.src.Syms {
		if l.src.Syms[i].Kind == obj.SymFunc {
			mark(l.src.Syms[i].Addr)
		}
	}
	for i, in := range l.insts {
		pc := obj.TextBase + uint32(i)*4
		if in.IsBranch() {
			mark(in.BranchTarget(pc))
		} else if t, ok := in.DirectJumpTarget(pc); ok {
			mark(t)
		}
	}
}

func (l *lowerer) emit(in isa.Inst) { l.out = append(l.out, in) }

// emitBranch emits a control transfer whose offset is patched once the
// whole text is lowered.
func (l *lowerer) emitBranch(op isa.Op, tgtIdx int) {
	l.fixups = append(l.fixups, fixup{outIdx: len(l.out), tgtIdx: tgtIdx})
	l.emit(isa.Inst{Op: op})
}

// matConst materialises a 32-bit constant into reg (movw low, movt high).
func (l *lowerer) matConst(reg isa.Reg, v uint32) {
	l.emit(isa.Inst{Op: isa.AMOVW, Rd: reg, Imm: int32(v & 0xffff)})
	l.emit(isa.Inst{Op: isa.AMOVT, Rd: reg, Imm: int32(v >> 16)})
}

func (l *lowerer) lowerAll() error {
	for i := 0; i < len(l.insts); i++ {
		l.newIdx[i] = len(l.out)
		if i+1 < len(l.insts) && !l.leader[i+1] {
			if merged, ok := fusePair(l.insts[i], l.insts[i+1]); ok {
				l.newIdx[i+1] = len(l.out)
				l.emit(merged)
				i++
				continue
			}
		}
		if err := l.lower(i, l.insts[i]); err != nil {
			return fmt.Errorf("arm: lower pc %#x (%v): %w",
				obj.TextBase+uint32(i)*4, l.insts[i], err)
		}
	}
	return nil
}

// fusePair recognises the two pre/post-index shapes: an address
// increment adjacent to a word load/store of the same base register.
// The base must be a plain pointer register (not zero or $gp, whose
// accesses lower through absolute addresses), the memory offset must
// be zero, and the data register must differ from the base so the
// writeback is unambiguous.
func fusePair(a, b isa.Inst) (isa.Inst, bool) {
	incr := func(in isa.Inst) (isa.Reg, int32, bool) {
		if in.Op == isa.ADDIU && in.Rt == in.Rs && in.Imm != 0 &&
			in.Rs != isa.Zero && in.Rs != isa.GP &&
			in.Imm >= imm14Min && in.Imm <= imm14Max {
			return in.Rs, in.Imm, true
		}
		return 0, 0, false
	}
	mem := func(in isa.Inst) (op isa.Op, ok bool) {
		switch in.Op {
		case isa.LW:
			op = isa.ALDR
		case isa.SW:
			op = isa.ASTR
		default:
			return 0, false
		}
		if in.Imm != 0 || in.Rs == isa.Zero || in.Rs == isa.GP || in.Rt == in.Rs {
			return 0, false
		}
		return op, true
	}
	// Pre-index: addiu base, base, imm ; lw/sw rt, 0(base).
	if base, imm, ok := incr(a); ok {
		if op, ok := mem(b); ok && b.Rs == base {
			pre := isa.ALDRPRE
			if op == isa.ASTR {
				pre = isa.ASTRPRE
			}
			return isa.Inst{Op: pre, Rt: b.Rt, Rs: base, Imm: imm}, true
		}
	}
	// Post-index: lw/sw rt, 0(base) ; addiu base, base, imm.
	if op, ok := mem(a); ok {
		if base, imm, ok := incr(b); ok && a.Rs == base {
			post := isa.ALDRPOST
			if op == isa.ASTR {
				post = isa.ASTRPOST
			}
			return isa.Inst{Op: post, Rt: a.Rt, Rs: base, Imm: imm}, true
		}
	}
	return isa.Inst{}, false
}

// binop lowers a three-operand rd = rs OP rt to the two-operand form.
func (l *lowerer) binop(op isa.Op, commutative bool, rd, rs, rt isa.Reg) {
	switch {
	case rd == rs:
		l.emit(isa.Inst{Op: op, Rd: rd, Rt: rt})
	case rd == rt && commutative:
		l.emit(isa.Inst{Op: op, Rd: rd, Rt: rs})
	case rd == rt && op == isa.ASUB:
		// rd = rs - rd is exactly reverse-subtract.
		l.emit(isa.Inst{Op: isa.ARSB, Rd: rd, Rt: rs})
	default:
		l.emit(isa.Inst{Op: isa.AMOV, Rd: rd, Rs: rs})
		l.emit(isa.Inst{Op: op, Rd: rd, Rt: rt})
	}
}

// memOps maps MIPS memory operations to their ARM offset-form ops.
var memOps = map[isa.Op]isa.Op{
	isa.LB: isa.ALDRSB, isa.LBU: isa.ALDRB,
	isa.LH: isa.ALDRSH, isa.LHU: isa.ALDRH,
	isa.LW: isa.ALDR, isa.SB: isa.ASTRB, isa.SH: isa.ASTRH, isa.SW: isa.ASTR,
	isa.LWC1: isa.AVLDR, isa.SWC1: isa.AVSTR,
}

func regsContain(rs []isa.Reg, r isa.Reg) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

func (l *lowerer) lower(idx int, in isa.Inst) error {
	pc := obj.TextBase + uint32(idx)*4
	tgtOf := func(addr uint32) int { return int((addr - obj.TextBase) / 4) }

	// Nothing may redefine the globals register: it does not exist on
	// this backend, only its value does.
	if regsContain(in.Defs(), isa.GP) {
		return fmt.Errorf("instruction writes $gp")
	}

	// Generic $gp fallback: ops without a dedicated $gp lowering read
	// it as a plain register, so materialise its constant value into
	// the same index (ip) first.
	switch in.Op {
	case isa.ADDI, isa.ADDIU, isa.LB, isa.LH, isa.LW, isa.LBU, isa.LHU,
		isa.SB, isa.SH, isa.SW, isa.LWC1, isa.SWC1:
		// Handled with dedicated address materialisation below.
	default:
		if regsContain(in.Uses(), isa.GP) {
			l.matConst(ip, l.src.GPValue)
		}
	}

	switch in.Op {
	case isa.NOP:
		l.emit(isa.Inst{Op: isa.NOP})

	case isa.SLL, isa.SRL, isa.SRA:
		op := map[isa.Op]isa.Op{isa.SLL: isa.ALSLI, isa.SRL: isa.ALSRI, isa.SRA: isa.AASRI}[in.Op]
		if in.Rd != in.Rt {
			l.emit(isa.Inst{Op: isa.AMOV, Rd: in.Rd, Rs: in.Rt})
		}
		l.emit(isa.Inst{Op: op, Rd: in.Rd, Imm: in.Imm})

	case isa.SLLV, isa.SRLV, isa.SRAV:
		op := map[isa.Op]isa.Op{isa.SLLV: isa.ALSL, isa.SRLV: isa.ALSR, isa.SRAV: isa.AASR}[in.Op]
		amount := in.Rs
		if in.Rs == in.Rd {
			l.emit(isa.Inst{Op: isa.AMOV, Rd: ip, Rs: in.Rs})
			amount = ip
		}
		if in.Rd != in.Rt {
			l.emit(isa.Inst{Op: isa.AMOV, Rd: in.Rd, Rs: in.Rt})
		}
		l.emit(isa.Inst{Op: op, Rd: in.Rd, Rt: amount})

	case isa.ADD, isa.ADDU:
		switch {
		case in.Rt == isa.Zero:
			l.emit(isa.Inst{Op: isa.AMOV, Rd: in.Rd, Rs: in.Rs})
		case in.Rs == isa.Zero:
			l.emit(isa.Inst{Op: isa.AMOV, Rd: in.Rd, Rs: in.Rt})
		default:
			l.binop(isa.AADD, true, in.Rd, in.Rs, in.Rt)
		}
	case isa.SUB, isa.SUBU:
		if in.Rt == isa.Zero {
			l.emit(isa.Inst{Op: isa.AMOV, Rd: in.Rd, Rs: in.Rs})
		} else {
			l.binop(isa.ASUB, false, in.Rd, in.Rs, in.Rt)
		}
	case isa.MUL:
		l.binop(isa.AMUL, true, in.Rd, in.Rs, in.Rt)
	case isa.AND:
		l.binop(isa.AAND, true, in.Rd, in.Rs, in.Rt)
	case isa.OR:
		l.binop(isa.AORR, true, in.Rd, in.Rs, in.Rt)
	case isa.XOR:
		l.binop(isa.AEOR, true, in.Rd, in.Rs, in.Rt)
	case isa.NOR:
		l.binop(isa.AORR, true, in.Rd, in.Rs, in.Rt)
		l.emit(isa.Inst{Op: isa.AMVN, Rd: in.Rd, Rs: in.Rd})

	case isa.SLT:
		l.emit(isa.Inst{Op: isa.ACMP, Rs: in.Rs, Rt: in.Rt})
		l.emit(isa.Inst{Op: isa.ASETLT, Rd: in.Rd})
	case isa.SLTU:
		l.emit(isa.Inst{Op: isa.ACMP, Rs: in.Rs, Rt: in.Rt})
		l.emit(isa.Inst{Op: isa.ASETLO, Rd: in.Rd})
	case isa.SLTI:
		l.emit(isa.Inst{Op: isa.ACMPI, Rs: in.Rs, Imm: in.Imm})
		l.emit(isa.Inst{Op: isa.ASETLT, Rd: in.Rt})
	case isa.SLTIU:
		l.emit(isa.Inst{Op: isa.ACMPI, Rs: in.Rs, Imm: in.Imm})
		l.emit(isa.Inst{Op: isa.ASETLO, Rd: in.Rt})

	case isa.MULT, isa.DIV, isa.DIVU, isa.MFHI, isa.MFLO:
		l.emit(in)

	case isa.JR:
		l.emit(isa.Inst{Op: isa.ABX, Rs: in.Rs})
	case isa.JALR:
		l.emit(isa.Inst{Op: isa.ABLX, Rd: in.Rd, Rs: in.Rs})
	case isa.J:
		l.emitBranch(isa.AB, tgtOf(in.JumpTarget(pc)))
	case isa.JAL:
		l.emitBranch(isa.ABL, tgtOf(in.JumpTarget(pc)))

	case isa.BEQ:
		l.emit(isa.Inst{Op: isa.ACMP, Rs: in.Rs, Rt: in.Rt})
		l.emitBranch(isa.ABEQ, tgtOf(in.BranchTarget(pc)))
	case isa.BNE:
		l.emit(isa.Inst{Op: isa.ACMP, Rs: in.Rs, Rt: in.Rt})
		l.emitBranch(isa.ABNE, tgtOf(in.BranchTarget(pc)))
	case isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
		op := map[isa.Op]isa.Op{
			isa.BLEZ: isa.ABLE, isa.BGTZ: isa.ABGT,
			isa.BLTZ: isa.ABLT, isa.BGEZ: isa.ABGE,
		}[in.Op]
		l.emit(isa.Inst{Op: isa.ACMPI, Rs: in.Rs, Imm: 0})
		l.emitBranch(op, tgtOf(in.BranchTarget(pc)))
	case isa.BC1T, isa.BC1F:
		l.emitBranch(in.Op, tgtOf(in.BranchTarget(pc)))

	case isa.SYSCALL:
		l.emit(isa.Inst{Op: isa.ASVC})

	case isa.ADDI, isa.ADDIU:
		switch {
		case in.Rs == isa.GP:
			l.matConst(in.Rt, l.src.GPValue+uint32(in.Imm))
		case in.Rs == isa.Zero:
			l.emit(isa.Inst{Op: isa.AMOVI, Rd: in.Rt, Imm: in.Imm})
		case in.Rt == in.Rs:
			l.emit(isa.Inst{Op: isa.AADDI, Rd: in.Rt, Imm: in.Imm})
		default:
			l.emit(isa.Inst{Op: isa.AMOV, Rd: in.Rt, Rs: in.Rs})
			if in.Imm != 0 {
				l.emit(isa.Inst{Op: isa.AADDI, Rd: in.Rt, Imm: in.Imm})
			}
		}

	case isa.ANDI, isa.ORI, isa.XORI:
		op := map[isa.Op]isa.Op{isa.ANDI: isa.AANDI, isa.ORI: isa.AORRI, isa.XORI: isa.AEORI}[in.Op]
		if in.Op == isa.ORI && in.Rs == isa.Zero {
			l.emit(isa.Inst{Op: isa.AMOVW, Rd: in.Rt, Imm: in.Imm})
			break
		}
		if in.Rt != in.Rs {
			l.emit(isa.Inst{Op: isa.AMOV, Rd: in.Rt, Rs: in.Rs})
		}
		l.emit(isa.Inst{Op: op, Rd: in.Rt, Imm: in.Imm})

	case isa.LUI:
		l.emit(isa.Inst{Op: isa.AMOVW, Rd: in.Rt, Imm: 0})
		l.emit(isa.Inst{Op: isa.AMOVT, Rd: in.Rt, Imm: in.Imm & 0xffff})

	case isa.LB, isa.LH, isa.LW, isa.LBU, isa.LHU,
		isa.SB, isa.SH, isa.SW, isa.LWC1, isa.SWC1:
		op := memOps[in.Op]
		switch {
		case in.Rs == isa.GP:
			// Absolute small-data access: the address is a link-time
			// constant, so materialise it and use a zero offset. The
			// pattern analysis sees Deref(Const) — no GP leaf exists.
			l.matConst(ip, l.src.GPValue+uint32(in.Imm))
			l.emit(isa.Inst{Op: op, Rt: in.Rt, Rs: ip})
		case in.Imm >= imm14Min && in.Imm <= imm14Max:
			l.emit(isa.Inst{Op: op, Rt: in.Rt, Rs: in.Rs, Imm: in.Imm})
		default:
			l.emit(isa.Inst{Op: isa.AMOV, Rd: ip, Rs: in.Rs})
			l.emit(isa.Inst{Op: isa.AADDI, Rd: ip, Imm: in.Imm})
			l.emit(isa.Inst{Op: op, Rt: in.Rt, Rs: ip})
		}

	case isa.MFC1, isa.MTC1, isa.ADDS, isa.SUBS, isa.MULS, isa.DIVS,
		isa.MOVS, isa.NEGS, isa.CVTSW, isa.CVTWS, isa.CEQS, isa.CLTS, isa.CLES:
		l.emit(in)

	default:
		return fmt.Errorf("no lowering")
	}
	return nil
}

// patchFixups resolves branch offsets now that every MIPS index has an
// ARM index.
func (l *lowerer) patchFixups() error {
	end := len(l.out)
	for _, f := range l.fixups {
		if f.tgtIdx < 0 || f.tgtIdx > len(l.insts) {
			return fmt.Errorf("arm: branch target index %d outside text", f.tgtIdx)
		}
		tgt := end
		if f.tgtIdx < len(l.insts) {
			tgt = l.newIdx[f.tgtIdx]
		}
		l.out[f.outIdx].Imm = int32(tgt - (f.outIdx + 1))
	}
	return nil
}

// buildImage encodes the lowered text and rescales the symbol table.
func (l *lowerer) buildImage() (*obj.Image, error) {
	dst := &obj.Image{
		ISA:     "arm",
		Data:    l.src.Data,
		BSS:     l.src.BSS,
		GPValue: l.src.GPValue,
		Structs: l.src.Structs,
	}
	mapAddr := func(addr uint32) uint32 {
		idx := int((addr - obj.TextBase) / 4)
		if idx >= len(l.insts) {
			return obj.TextBase + uint32(len(l.out))*4
		}
		return obj.TextBase + uint32(l.newIdx[idx])*4
	}
	dst.Entry = mapAddr(l.src.Entry)
	dst.Text = make([]uint32, len(l.out))
	for i, in := range l.out {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("arm: encode %v: %w", in, err)
		}
		dst.Text[i] = w
	}
	for _, s := range l.src.Syms {
		if s.Kind == obj.SymFunc {
			start := mapAddr(s.Addr)
			s.Size = mapAddr(s.Addr+s.Size) - start
			s.Addr = start
		}
		dst.Syms = append(dst.Syms, s)
	}
	if l.src.SrcNames != nil {
		dst.SrcNames = make(map[uint32]string, len(l.src.SrcNames))
		for addr, name := range l.src.SrcNames {
			if addr >= obj.TextBase && addr < l.src.TextEnd() {
				addr = mapAddr(addr)
			}
			dst.SrcNames[addr] = name
		}
	}
	return dst, nil
}

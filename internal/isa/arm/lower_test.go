package arm

import (
	"testing"

	"delinq/internal/asm"
	"delinq/internal/isa"
	"delinq/internal/obj"
)

// lowerAsm assembles MIPS source and lowers it, failing the test on
// any pipeline error.
func lowerAsm(t *testing.T, src string) *obj.Image {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	lowered, err := LowerImage(img)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return lowered
}

// decodeText decodes the lowered image's text words.
func decodeText(t *testing.T, img *obj.Image) []isa.Inst {
	t.Helper()
	out := make([]isa.Inst, len(img.Text))
	for i, w := range img.Text {
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("text[%d] = %#08x does not decode: %v", i, w, err)
		}
		out[i] = in
	}
	return out
}

// ops projects a decoded stream to its opcode sequence.
func ops(insts []isa.Inst) []isa.Op {
	o := make([]isa.Op, len(insts))
	for i, in := range insts {
		o[i] = in.Op
	}
	return o
}

func countOp(insts []isa.Inst, op isa.Op) int {
	n := 0
	for _, in := range insts {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestLowerImageRejectsNonMIPS(t *testing.T) {
	img := lowerAsm(t, ".text\nmain:\nsyscall\n")
	if img.ISAName() != "arm" {
		t.Fatalf("lowered ISA = %q, want arm", img.ISAName())
	}
	if _, err := LowerImage(img); err == nil {
		t.Fatal("lowering an ARM image succeeded; want error")
	}
}

func TestMachineSurface(t *testing.T) {
	m, err := isa.ByName("arm")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "arm" {
		t.Errorf("Name = %q", m.Name())
	}
	if _, hasGP := m.GP(); hasGP {
		t.Error("ARM reports a globals register")
	}
	if len(m.TempRegs()) == 0 || len(m.SavedRegs()) == 0 {
		t.Error("empty temp/saved register sets")
	}
	if got := m.RegName(m.SP()); got != "sp" {
		t.Errorf("RegName(SP) = %q, want sp", got)
	}
	in := isa.Inst{Op: isa.AADD, Rd: 1, Rt: 2}
	w, err := m.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := m.Decode(w)
	if err != nil || back != in {
		t.Errorf("machine Encode/Decode round trip: %v %v", back, err)
	}
}

// TestLowerTwoOperandExpansion pins the binop shapes: rd==rs collapses
// to one instruction, rd==rt commutative swaps, rd==rt subtraction
// becomes reverse-subtract, and the general case pairs mov+op.
func TestLowerTwoOperandExpansion(t *testing.T) {
	insts := decodeText(t, lowerAsm(t, `.text
main:
addu $t0, $t0, $t1
addu $t0, $t1, $t0
subu $t0, $t1, $t0
addu $t2, $t0, $t1
syscall
`))
	want := []isa.Op{
		isa.AADD,           // t0 += t1
		isa.AADD,           // commutative swap: t0 += t1
		isa.ARSB,           // t0 = t1 - t0
		isa.AMOV, isa.AADD, // t2 = t0; t2 += t1
		isa.ASVC,
	}
	got := ops(insts)
	if len(got) != len(want) {
		t.Fatalf("lowered to %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lowered to %v, want %v", got, want)
		}
	}
}

// TestLowerCompareSplit: MIPS compare-into-register and compare-branch
// forms must split into explicit compare state.
func TestLowerCompareSplit(t *testing.T) {
	insts := decodeText(t, lowerAsm(t, `.text
main:
slt $t0, $t1, $t2
sltu $t0, $t1, $t2
slti $t0, $t1, 5
sltiu $t0, $t1, 5
beq $t0, $t1, done
bltz $t0, done
done:
syscall
`))
	for _, pair := range [][2]isa.Op{
		{isa.ACMP, isa.ASETLT}, {isa.ACMP, isa.ASETLO},
		{isa.ACMPI, isa.ASETLT}, {isa.ACMPI, isa.ASETLO},
		{isa.ACMP, isa.ABEQ}, {isa.ACMPI, isa.ABLT},
	} {
		found := false
		for i := 0; i+1 < len(insts); i++ {
			if insts[i].Op == pair[0] && insts[i+1].Op == pair[1] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %v;%v pair in %v", pair[0], pair[1], ops(insts))
		}
	}
}

// TestLowerGlobalsMaterialise: $gp-relative loads must become
// movw/movt address materialisation plus a zero-offset access — the
// backend has no globals register.
func TestLowerGlobalsMaterialise(t *testing.T) {
	lowered := lowerAsm(t, `.data
g: .word 7
.text
main:
lw $t0, g
sw $t0, g
addiu $t1, $gp, 4
syscall
`)
	insts := decodeText(t, lowered)
	if n := countOp(insts, isa.AMOVW); n < 3 {
		t.Errorf("want >=3 movw (two accesses + one address), got %d in %v", n, ops(insts))
	}
	if countOp(insts, isa.AMOVT) != countOp(insts, isa.AMOVW) {
		t.Errorf("movw/movt imbalance in %v", ops(insts))
	}
	for _, in := range insts {
		if in.Op == isa.ALDR || in.Op == isa.ASTR {
			if in.Rs != ip || in.Imm != 0 {
				t.Errorf("global access %v not through ip+0", in)
			}
		}
	}
}

// TestLowerFusePairShapes unit-tests the pre/post-index peephole.
func TestLowerFusePairShapes(t *testing.T) {
	base, data := isa.Reg(8), isa.Reg(9)
	incr := isa.Inst{Op: isa.ADDIU, Rs: base, Rt: base, Imm: 4}
	load := isa.Inst{Op: isa.LW, Rt: data, Rs: base}
	store := isa.Inst{Op: isa.SW, Rt: data, Rs: base}

	if got, ok := fusePair(incr, load); !ok || got.Op != isa.ALDRPRE || got.Imm != 4 {
		t.Errorf("pre-index load: got %v ok=%v", got, ok)
	}
	if got, ok := fusePair(load, incr); !ok || got.Op != isa.ALDRPOST {
		t.Errorf("post-index load: got %v ok=%v", got, ok)
	}
	if got, ok := fusePair(incr, store); !ok || got.Op != isa.ASTRPRE {
		t.Errorf("pre-index store: got %v ok=%v", got, ok)
	}
	if got, ok := fusePair(store, incr); !ok || got.Op != isa.ASTRPOST {
		t.Errorf("post-index store: got %v ok=%v", got, ok)
	}

	reject := []struct {
		name string
		a, b isa.Inst
	}{
		{"offset load", incr, isa.Inst{Op: isa.LW, Rt: data, Rs: base, Imm: 8}},
		{"different base", incr, isa.Inst{Op: isa.LW, Rt: data, Rs: data}},
		{"data==base", incr, isa.Inst{Op: isa.LW, Rt: base, Rs: base}},
		{"gp base", isa.Inst{Op: isa.ADDIU, Rs: isa.GP, Rt: isa.GP, Imm: 4},
			isa.Inst{Op: isa.LW, Rt: data, Rs: isa.GP}},
		{"non-incr", isa.Inst{Op: isa.ADDIU, Rs: base, Rt: data, Imm: 4}, load},
		{"two loads", load, load},
	}
	for _, r := range reject {
		if got, ok := fusePair(r.a, r.b); ok {
			t.Errorf("%s fused to %v; want no fuse", r.name, got)
		}
	}
}

// TestLowerFusesAcrossStream: the peephole must fire on a real lowered
// stream but never across a branch target.
func TestLowerFusesAcrossStream(t *testing.T) {
	insts := decodeText(t, lowerAsm(t, `.text
main:
lw $t0, 0($t1)
addiu $t1, $t1, 4
syscall
`))
	if countOp(insts, isa.ALDRPOST) != 1 {
		t.Errorf("post-index fuse missing: %v", ops(insts))
	}

	// Same pair, but the increment is a branch target: no fuse.
	insts = decodeText(t, lowerAsm(t, `.text
main:
lw $t0, 0($t1)
loop:
addiu $t1, $t1, 4
bne $t1, $t0, loop
syscall
`))
	if countOp(insts, isa.ALDRPOST) != 0 {
		t.Errorf("fused across a leader: %v", ops(insts))
	}
}

// TestLowerMiscForms drives the remaining lowering cases end to end:
// shifts (immediate and register, including the aliased-amount case),
// nor, lui, immediate logic, zero-source moves, out-of-range memory
// offsets, jumps/calls, and FP pass-through.
func TestLowerMiscForms(t *testing.T) {
	lowered := lowerAsm(t, `.text
.func f
f:
jr $ra
.endfunc
main:
sll $t0, $t1, 2
srl $t0, $t0, 1
srav $t0, $t1, $t0
sllv $t2, $t0, $t1
nor $t0, $t1, $t2
lui $t3, 18
ori $t4, $zero, 99
andi $t5, $t1, 15
xori $t6, $t6, 1
addiu $t7, $zero, -3
addu $t0, $t1, $zero
lw $t0, 16000($t1)
mult $t0, $t1
mflo $t2
jal f
nop
mtc1 $t0, $f0
cvt.s.w $f0, $f0
add.s $f1, $f0, $f0
syscall
`)
	insts := decodeText(t, lowered)
	for _, op := range []isa.Op{
		isa.ALSLI, isa.ALSRI, isa.AASR, isa.ALSL, isa.AMVN,
		isa.AMOVT, isa.AMOVW, isa.AANDI, isa.AEORI, isa.AMOVI,
		isa.AMOV, isa.AADDI, isa.ALDR, isa.MULT, isa.MFLO,
		isa.ABL, isa.ABX, isa.MTC1, isa.CVTSW, isa.ADDS, isa.ASVC,
	} {
		if countOp(insts, op) == 0 {
			t.Errorf("no %v in lowered stream %v", op, ops(insts))
		}
	}
	// The 16000 offset exceeds imm14: the access must go through ip.
	found := false
	for _, in := range insts {
		if in.Op == isa.ALDR && in.Rs == ip {
			found = true
		}
	}
	if !found {
		t.Errorf("out-of-range offset load not rematerialised through ip: %v", ops(insts))
	}
	// Function symbols must be rescaled to the new extents.
	var f *obj.Sym
	for i := range lowered.Syms {
		if lowered.Syms[i].Name == "f" && lowered.Syms[i].Kind == obj.SymFunc {
			f = &lowered.Syms[i]
		}
	}
	if f == nil {
		t.Fatal("function symbol f missing after lowering")
	}
	idx := int((f.Addr - obj.TextBase) / 4)
	if insts[idx].Op != isa.ABX {
		t.Errorf("f entry lowered to %v, want ABX", insts[idx])
	}
}

package arm

import (
	"fmt"

	"delinq/internal/isa"
)

// The ARM backend uses a flat 8-bit opcode in the word's top byte —
// no format/funct subfields — with five operand layouts below it:
//
//	mem:   op(8) rt(5) rs(5) imm14        (loads/stores, signed offset)
//	r+i16: op(8) reg(5) pad(3) imm16      (immediate ALU, movw/movt, cmp)
//	2reg:  op(8) r1(5) pad(3) r2(5) pad(11)
//	imm24: op(8) imm24                    (branches and calls, word offset)
//	3fp:   op(8) fd(5) pad(3) fs(5) pad(3) ft(5) pad(3)
//
// The word 0 is NOP, as on MIPS, so zero-filled text stays inert.

// opcodeOrder fixes the opcode byte assignment: index+1 in this slice
// is the op's top byte (0 is reserved for NOP). Appending to the end
// is the only compatible way to extend the encoding.
var opcodeOrder = []isa.Op{
	isa.AMOV, isa.AMVN, isa.AADD, isa.ASUB, isa.ARSB, isa.AMUL,
	isa.AAND, isa.AORR, isa.AEOR, isa.ALSL, isa.ALSR, isa.AASR,
	isa.AADDI, isa.AANDI, isa.AORRI, isa.AEORI,
	isa.ALSLI, isa.ALSRI, isa.AASRI,
	isa.AMOVI, isa.AMOVW, isa.AMOVT,
	isa.ACMP, isa.ACMPI, isa.ASETLT, isa.ASETLO,
	isa.ABEQ, isa.ABNE, isa.ABLT, isa.ABGE, isa.ABGT, isa.ABLE,
	isa.AB, isa.ABL, isa.ABX, isa.ABLX, isa.ASVC,
	isa.ALDR, isa.ALDRH, isa.ALDRSH, isa.ALDRB, isa.ALDRSB,
	isa.ASTR, isa.ASTRH, isa.ASTRB,
	isa.ALDRPRE, isa.ALDRPOST, isa.ASTRPRE, isa.ASTRPOST,
	isa.AVLDR, isa.AVSTR,
	// Shared ops the lowering keeps: the hi/lo multiply unit and the
	// COP1-equivalent FP file re-encode under ARM opcodes.
	isa.MULT, isa.DIV, isa.DIVU, isa.MFHI, isa.MFLO,
	isa.MFC1, isa.MTC1,
	isa.ADDS, isa.SUBS, isa.MULS, isa.DIVS, isa.MOVS, isa.NEGS,
	isa.CVTSW, isa.CVTWS, isa.CEQS, isa.CLTS, isa.CLES,
	isa.BC1T, isa.BC1F,
}

var opToByte = func() map[isa.Op]uint32 {
	m := make(map[isa.Op]uint32, len(opcodeOrder))
	for i, op := range opcodeOrder {
		m[op] = uint32(i + 1)
	}
	return m
}()

var byteToOp = func() map[uint32]isa.Op {
	m := make(map[uint32]isa.Op, len(opcodeOrder))
	for i, op := range opcodeOrder {
		m[uint32(i+1)] = op
	}
	return m
}()

// Immediate ranges per layout.
const (
	imm14Min = -(1 << 13)
	imm14Max = 1<<13 - 1
	imm24Min = -(1 << 23)
	imm24Max = 1<<23 - 1
)

func checkReg(r isa.Reg) error {
	if r > 31 {
		return fmt.Errorf("arm: register %d out of range", r)
	}
	return nil
}

// signedImm16 ops sign-extend their immediate on decode; the rest of
// the r+i16 layout zero-extends.
func signedImm16(op isa.Op) bool {
	switch op {
	case isa.AADDI, isa.AMOVI, isa.ACMPI:
		return true
	}
	return false
}

// Encode converts an instruction to its 32-bit ARM machine word.
func Encode(i isa.Inst) (uint32, error) {
	for _, r := range []isa.Reg{i.Rd, i.Rs, i.Rt} {
		if err := checkReg(r); err != nil {
			return 0, err
		}
	}
	opb, ok := opToByte[i.Op]
	if i.Op == isa.NOP {
		return 0, nil
	}
	if !ok {
		return 0, fmt.Errorf("arm: cannot encode %v", i.Op)
	}
	w := opb << 24
	switch i.Op {
	case isa.ALDR, isa.ALDRH, isa.ALDRSH, isa.ALDRB, isa.ALDRSB,
		isa.ASTR, isa.ASTRH, isa.ASTRB,
		isa.ALDRPRE, isa.ALDRPOST, isa.ASTRPRE, isa.ASTRPOST,
		isa.AVLDR, isa.AVSTR:
		if i.Imm < imm14Min || i.Imm > imm14Max {
			return 0, fmt.Errorf("arm: %v offset %d outside imm14", i.Op, i.Imm)
		}
		return w | uint32(i.Rt)<<19 | uint32(i.Rs)<<14 | uint32(i.Imm)&0x3fff, nil

	case isa.AADDI, isa.AANDI, isa.AORRI, isa.AEORI,
		isa.ALSLI, isa.ALSRI, isa.AASRI,
		isa.AMOVI, isa.AMOVW, isa.AMOVT, isa.ACMPI:
		reg := i.Rd
		if i.Op == isa.ACMPI {
			reg = i.Rs
		}
		switch {
		case i.Op == isa.ALSLI || i.Op == isa.ALSRI || i.Op == isa.AASRI:
			if i.Imm < 0 || i.Imm > 31 {
				return 0, fmt.Errorf("arm: %v shift %d outside [0,31]", i.Op, i.Imm)
			}
		case signedImm16(i.Op):
			if i.Imm < -32768 || i.Imm > 32767 {
				return 0, fmt.Errorf("arm: %v immediate %d outside int16", i.Op, i.Imm)
			}
		default:
			if i.Imm < 0 || i.Imm > 0xffff {
				return 0, fmt.Errorf("arm: %v immediate %d outside uint16", i.Op, i.Imm)
			}
		}
		return w | uint32(reg)<<16 | uint32(i.Imm)&0xffff, nil

	case isa.AMOV, isa.AMVN, isa.ABLX:
		return w | uint32(i.Rd)<<16 | uint32(i.Rs)<<8, nil
	case isa.AADD, isa.ASUB, isa.ARSB, isa.AMUL,
		isa.AAND, isa.AORR, isa.AEOR, isa.ALSL, isa.ALSR, isa.AASR:
		return w | uint32(i.Rd)<<16 | uint32(i.Rt)<<8, nil
	case isa.ACMP, isa.MULT, isa.DIV, isa.DIVU:
		return w | uint32(i.Rs)<<16 | uint32(i.Rt)<<8, nil
	case isa.ABX:
		return w | uint32(i.Rs)<<16, nil
	case isa.ASETLT, isa.ASETLO, isa.MFHI, isa.MFLO:
		return w | uint32(i.Rd)<<16, nil
	case isa.MFC1, isa.MTC1:
		return w | uint32(i.Rt)<<16 | uint32(i.Rd)<<8, nil

	case isa.AB, isa.ABL, isa.ABEQ, isa.ABNE, isa.ABLT, isa.ABGE,
		isa.ABGT, isa.ABLE, isa.BC1T, isa.BC1F:
		if i.Imm < imm24Min || i.Imm > imm24Max {
			return 0, fmt.Errorf("arm: %v offset %d outside imm24", i.Op, i.Imm)
		}
		return w | uint32(i.Imm)&0xffffff, nil

	case isa.ASVC:
		return w, nil

	case isa.ADDS, isa.SUBS, isa.MULS, isa.DIVS, isa.MOVS, isa.NEGS,
		isa.CVTSW, isa.CVTWS, isa.CEQS, isa.CLTS, isa.CLES:
		return w | uint32(i.Rd)<<16 | uint32(i.Rs)<<8 | uint32(i.Rt), nil
	}
	return 0, fmt.Errorf("arm: cannot encode %v", i.Op)
}

func signExt14(v uint32) int32 { return int32(v<<18) >> 18 }
func signExt24(v uint32) int32 { return int32(v<<8) >> 8 }

// Decode converts a 32-bit ARM machine word back to an instruction.
func Decode(word uint32) (isa.Inst, error) {
	if word == 0 {
		return isa.Inst{Op: isa.NOP}, nil
	}
	op, ok := byteToOp[word>>24]
	if !ok {
		return isa.Inst{}, fmt.Errorf("arm: unknown opcode %#x in word %#08x", word>>24, word)
	}
	switch op {
	case isa.ALDR, isa.ALDRH, isa.ALDRSH, isa.ALDRB, isa.ALDRSB,
		isa.ASTR, isa.ASTRH, isa.ASTRB,
		isa.ALDRPRE, isa.ALDRPOST, isa.ASTRPRE, isa.ASTRPOST,
		isa.AVLDR, isa.AVSTR:
		return isa.Inst{
			Op:  op,
			Rt:  isa.Reg(word >> 19 & 0x1f),
			Rs:  isa.Reg(word >> 14 & 0x1f),
			Imm: signExt14(word & 0x3fff),
		}, nil

	case isa.AADDI, isa.AANDI, isa.AORRI, isa.AEORI,
		isa.ALSLI, isa.ALSRI, isa.AASRI,
		isa.AMOVI, isa.AMOVW, isa.AMOVT, isa.ACMPI:
		reg := isa.Reg(word >> 16 & 0x1f)
		imm := int32(word & 0xffff)
		switch {
		case op == isa.ALSLI || op == isa.ALSRI || op == isa.AASRI:
			imm &= 0x1f
		case signedImm16(op):
			imm = int32(int16(imm))
		}
		if op == isa.ACMPI {
			return isa.Inst{Op: op, Rs: reg, Imm: imm}, nil
		}
		return isa.Inst{Op: op, Rd: reg, Imm: imm}, nil

	case isa.AMOV, isa.AMVN, isa.ABLX:
		return isa.Inst{Op: op, Rd: isa.Reg(word >> 16 & 0x1f), Rs: isa.Reg(word >> 8 & 0x1f)}, nil
	case isa.AADD, isa.ASUB, isa.ARSB, isa.AMUL,
		isa.AAND, isa.AORR, isa.AEOR, isa.ALSL, isa.ALSR, isa.AASR:
		return isa.Inst{Op: op, Rd: isa.Reg(word >> 16 & 0x1f), Rt: isa.Reg(word >> 8 & 0x1f)}, nil
	case isa.ACMP, isa.MULT, isa.DIV, isa.DIVU:
		return isa.Inst{Op: op, Rs: isa.Reg(word >> 16 & 0x1f), Rt: isa.Reg(word >> 8 & 0x1f)}, nil
	case isa.ABX:
		return isa.Inst{Op: op, Rs: isa.Reg(word >> 16 & 0x1f)}, nil
	case isa.ASETLT, isa.ASETLO, isa.MFHI, isa.MFLO:
		return isa.Inst{Op: op, Rd: isa.Reg(word >> 16 & 0x1f)}, nil
	case isa.MFC1, isa.MTC1:
		return isa.Inst{Op: op, Rt: isa.Reg(word >> 16 & 0x1f), Rd: isa.Reg(word >> 8 & 0x1f)}, nil

	case isa.AB, isa.ABL, isa.ABEQ, isa.ABNE, isa.ABLT, isa.ABGE,
		isa.ABGT, isa.ABLE, isa.BC1T, isa.BC1F:
		return isa.Inst{Op: op, Imm: signExt24(word & 0xffffff)}, nil

	case isa.ASVC:
		return isa.Inst{Op: op}, nil

	case isa.ADDS, isa.SUBS, isa.MULS, isa.DIVS, isa.MOVS, isa.NEGS,
		isa.CVTSW, isa.CVTWS, isa.CEQS, isa.CLTS, isa.CLES:
		return isa.Inst{
			Op: op,
			Rd: isa.Reg(word >> 16 & 0x1f),
			Rs: isa.Reg(word >> 8 & 0x1f),
			Rt: isa.Reg(word & 0x1f),
		}, nil
	}
	return isa.Inst{}, fmt.Errorf("arm: unknown opcode %#x in word %#08x", word>>24, word)
}

// Package arm is the second backend: a two-operand ARM-like ISA with
// explicit compare state, pre/post-indexed word addressing, and no
// globals register. It exists to test the paper's claim that the
// register-usage heuristic identifies delinquent loads from compiled
// code shape rather than from any one ISA: the address-pattern lattice
// must survive a machine where global accesses materialise absolute
// addresses (no $gp leaves) and pointer walks update their base
// register inside the load itself.
//
// The backend has no separate code generator: minic always emits MIPS
// text, and LowerImage rewrites an assembled MIPS image into ARM
// instructions (two-operand expansion, compare/branch splitting,
// constant materialisation through the ip scratch register, and a
// pre/post-index peephole). Register indices are shared with MIPS;
// only roles and spellings differ — r28, MIPS's $gp, becomes the
// call-clobbered scratch register ip.
package arm

import "delinq/internal/isa"

// ip is the scratch register the lowering uses to materialise
// constants and out-of-range addresses. It occupies the index MIPS
// reserves for $gp, which the ARM backend has no other use for.
const ip = isa.Reg(28)

type machine struct{}

// M is the ARM machine description.
var M isa.Machine = machine{}

func init() { isa.Register(M) }

func (machine) Name() string        { return "arm" }
func (machine) Zero() isa.Reg       { return 0 }
func (machine) SP() isa.Reg         { return 29 }
func (machine) FP() isa.Reg         { return 30 }
func (machine) RA() isa.Reg         { return 31 }
func (machine) GP() (isa.Reg, bool) { return 0, false }

func (machine) ArgRegs() []isa.Reg { return []isa.Reg{4, 5, 6, 7} }
func (machine) RetRegs() []isa.Reg { return []isa.Reg{2, 3} }

func (machine) TempRegs() []isa.Reg {
	return []isa.Reg{8, 9, 10, 11, 12, 13, 14, 15, 24, 25}
}

func (machine) SavedRegs() []isa.Reg {
	return []isa.Reg{16, 17, 18, 19, 20, 21, 22, 23}
}

func (machine) CallClobbered() []isa.Reg {
	// The MIPS caller-saved set at the same indices, plus ip: callees
	// rematerialise through it freely.
	return []isa.Reg{
		2, 3, 4, 5, 6, 7,
		8, 9, 10, 11, 12, 13, 14, 15,
		24, 25, 1, ip, 31,
	}
}

func (machine) RegName(r isa.Reg) string { return isa.ARMRegName(r) }

func (machine) Encode(i isa.Inst) (uint32, error)    { return Encode(i) }
func (machine) Decode(word uint32) (isa.Inst, error) { return Decode(word) }

package arm_test

import (
	"testing"

	"delinq/internal/core"
	"delinq/internal/vm"
)

const smokeSrc = `
int g[10];
struct node { int val; struct node *next; };
int sum(int *a, int n) {
  int s; int i;
  s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
  return s;
}
int main() {
  int i;
  struct node *head; struct node *p;
  head = 0;
  for (i = 0; i < 10; i = i + 1) {
    g[i] = i * 3;
    p = malloc(8);
    p->val = i; p->next = head; head = p;
  }
  i = sum(g, 10);
  p = head;
  while (p) { i = i + p->val; p = p->next; }
  print_int(i);
  return i;
}`

func TestSmokeManual(t *testing.T) {
	for _, opt := range []bool{false, true} {
		var exits [2]int32
		var outs [2]string
		for k, name := range []string{"mips", "arm"} {
			img, err := core.BuildSourceISA(smokeSrc, opt, name)
			if err != nil {
				t.Fatalf("build %s opt=%v: %v", name, opt, err)
			}
			res, err := vm.Run(img, vm.Options{CaptureOutput: true})
			if err != nil {
				t.Fatalf("run %s opt=%v: %v", name, opt, err)
			}
			exits[k], outs[k] = res.Exit, res.Output
		}
		if exits[0] != exits[1] || outs[0] != outs[1] {
			t.Fatalf("opt=%v mismatch: mips=(%d,%q) arm=(%d,%q)", opt, exits[0], outs[0], exits[1], outs[1])
		}
	}
	img, err := core.BuildSourceISA(smokeSrc, true, "arm")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.IdentifyImage(img, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("arm loads: %d delinquent: %d", len(res.Loads), len(res.Delinquent()))
}

package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// install arms p for the duration of the test, restoring the disarmed
// state afterwards even if the test fails mid-way.
func install(t *testing.T, p *Plan) {
	t.Helper()
	Install(p)
	t.Cleanup(Clear)
}

func TestPointNames(t *testing.T) {
	for pt := Point(0); pt < numPoints; pt++ {
		got, ok := PointByName(pt.String())
		if !ok || got != pt {
			t.Errorf("PointByName(%q) = %v, %v", pt.String(), got, ok)
		}
	}
	if _, ok := PointByName("frobnicate"); ok {
		t.Error("PointByName accepted an unknown name")
	}
	if s := Point(99).String(); s != "point(99)" {
		t.Errorf("out-of-range String = %q", s)
	}
}

func TestDisarmedIsNoop(t *testing.T) {
	Clear()
	if Fires(SimBudget, "x") {
		t.Error("Fires with no plan")
	}
	if err := Error(PatternBudget, "x"); err != nil {
		t.Errorf("Error with no plan = %v", err)
	}
	Crash(WorkerPanic, "x") // must not panic
	if Rand(CorruptImage, "x") != nil {
		t.Error("Rand with no plan")
	}
	var buf bytes.Buffer
	if r := Reader(TraceFlip, "x", &buf); r != &buf {
		t.Error("Reader with no plan wrapped the stream")
	}
	if Active() != nil {
		t.Error("Active with no plan")
	}
}

func TestArmFiresEveryTime(t *testing.T) {
	p := NewPlan(1)
	p.Arm(SimBudget, "181.mcf")
	install(t, p)
	for i := 0; i < 3; i++ {
		if !Fires(SimBudget, "181.mcf") {
			t.Fatalf("fire %d missed", i)
		}
	}
	if Fires(SimBudget, "130.li") {
		t.Error("unarmed target fired")
	}
	if Fires(PatternBudget, "181.mcf") {
		t.Error("unarmed point fired")
	}
}

func TestArmNConsumes(t *testing.T) {
	p := NewPlan(1)
	p.ArmN(PatternBudget, "008.espresso", 2)
	install(t, p)
	if !Fires(PatternBudget, "008.espresso") || !Fires(PatternBudget, "008.espresso") {
		t.Fatal("first two queries did not fire")
	}
	if Fires(PatternBudget, "008.espresso") {
		t.Error("third query fired after budget of 2")
	}
}

func TestWildcardTarget(t *testing.T) {
	p := NewPlan(1)
	p.Arm(WorkerPanic, "*")
	install(t, p)
	for _, target := range []string{"a", "b", ""} {
		if !Fires(WorkerPanic, target) {
			t.Errorf("wildcard did not match %q", target)
		}
	}
}

func TestErrorAndInjected(t *testing.T) {
	p := NewPlan(1)
	p.Arm(SimBudget, "x")
	install(t, p)
	err := Error(SimBudget, "x")
	if err == nil {
		t.Fatal("armed Error returned nil")
	}
	if !Injected(err) {
		t.Error("Injected missed a *Fault")
	}
	var f *Fault
	if !errors.As(err, &f) || f.Point != SimBudget || f.Target != "x" {
		t.Errorf("fault = %+v", f)
	}
	if !strings.Contains(err.Error(), "sim") || !strings.Contains(err.Error(), "x") {
		t.Errorf("fault message lacks provenance: %v", err)
	}
	if Injected(errors.New("ordinary")) {
		t.Error("Injected matched an ordinary error")
	}
}

func TestCrashPanicsWithFault(t *testing.T) {
	p := NewPlan(1)
	p.Arm(WorkerPanic, "x")
	install(t, p)
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok || f.Point != WorkerPanic {
			t.Errorf("recovered %v, want *Fault{WorkerPanic}", r)
		}
	}()
	Crash(WorkerPanic, "x")
	t.Fatal("Crash did not panic")
}

func TestRandDeterministic(t *testing.T) {
	draw := func(seed int64, target string) [4]int64 {
		Install(NewPlan(seed))
		defer Clear()
		r := Rand(CorruptImage, target)
		var out [4]int64
		for i := range out {
			out[i] = r.Int63()
		}
		return out
	}
	if draw(7, "t") != draw(7, "t") {
		t.Error("same (seed, point, target) streams diverge")
	}
	if draw(7, "t") == draw(7, "other") {
		t.Error("different targets produced identical streams")
	}
	if draw(7, "t") == draw(8, "t") {
		t.Error("different seeds produced identical streams")
	}
}

func TestReaderFlipsDeterministically(t *testing.T) {
	src := bytes.Repeat([]byte{0xAA}, 512)
	read := func() []byte {
		p := NewPlan(3)
		p.Arm(TraceFlip, "replay")
		Install(p)
		defer Clear()
		out, err := io.ReadAll(Reader(TraceFlip, "replay", bytes.NewReader(src)))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Error("flipped output not deterministic for a fixed seed")
	}
	if bytes.Equal(a, src) {
		t.Error("armed Reader did not flip any byte")
	}
	flips := 0
	for i := range a {
		if a[i] != src[i] {
			flips++
		}
	}
	if flips == 0 || flips > len(src)/8 {
		t.Errorf("flip density out of range: %d of %d", flips, len(src))
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("sim=181.mcf, worker=*, pattern=008.espresso#2", 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed() != 5 {
		t.Errorf("seed = %d", p.Seed())
	}
	install(t, p)
	if !Fires(SimBudget, "181.mcf") || !Fires(WorkerPanic, "anything") {
		t.Error("parsed arms did not fire")
	}
	if !Fires(PatternBudget, "008.espresso") || !Fires(PatternBudget, "008.espresso") {
		t.Error("#2 arm did not fire twice")
	}
	if Fires(PatternBudget, "008.espresso") {
		t.Error("#2 arm fired a third time")
	}

	for _, bad := range []string{
		"nonsense",
		"sim=",
		"frob=181.mcf",
		"sim=181.mcf#0",
		"sim=181.mcf#x",
	} {
		if _, err := ParsePlan(bad, 1); err == nil {
			t.Errorf("ParsePlan(%q) succeeded", bad)
		}
	}
	if p, err := ParsePlan("", 1); err != nil || p == nil {
		t.Errorf("empty spec: %v", err)
	}
}

func TestWALPointsParse(t *testing.T) {
	// The wal:* names contain a colon; ParsePlan must route the "="
	// split correctly and the #n suffix must still work.
	p, err := ParsePlan("wal:write=state.wal#1, wal:fsync=*, wal:rename=state.wal, wal:replay=checkpoint", 3)
	if err != nil {
		t.Fatal(err)
	}
	install(t, p)
	if !Fires(WALWrite, "state.wal") {
		t.Error("wal:write arm did not fire")
	}
	if Fires(WALWrite, "state.wal") {
		t.Error("wal:write#1 fired twice")
	}
	if !Fires(WALFsync, "anything") {
		t.Error("wal:fsync wildcard did not fire")
	}
	if !Fires(WALRename, "state.wal") || Fires(WALRename, "other.wal") {
		t.Error("wal:rename exact-target matching wrong")
	}
	if !Fires(WALReplay, "checkpoint") {
		t.Error("wal:replay arm did not fire")
	}
}

func TestLethal(t *testing.T) {
	Clear()
	if Lethal() {
		t.Error("Lethal with no plan installed")
	}
	p := NewPlan(1)
	install(t, p)
	if Lethal() {
		t.Error("Lethal defaults on")
	}
	p.SetLethal(true)
	if !Lethal() {
		t.Error("SetLethal(true) not observed")
	}
	p.SetLethal(false)
	if Lethal() {
		t.Error("SetLethal(false) not observed")
	}
}

// Package faultinject provides a deterministic, seedable fault plan for
// the experiment pipeline. Each pipeline seam (compile, pattern
// analysis, simulation, trace replay, worker pool) consults the
// installed plan by a (Point, target) pair — the target is usually a
// benchmark name — and, when armed, deliberately fails in a
// stage-characteristic way: a corrupted image, an exhausted analysis
// budget, a collapsed instruction budget, flipped trace bytes, or a
// panic inside a worker. Degradation paths become testable instead of
// theoretical: the chaos test arms every point and asserts the pipeline
// survives with per-benchmark isolation.
//
// With no plan installed every helper is a cheap no-op, so seams cost
// one atomic load on the fault-free path. All randomness derives from
// the plan seed plus the seam identity, so a fixed seed produces
// byte-identical degraded output run after run.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Point identifies one pipeline seam where a fault can be armed.
type Point int

const (
	// CorruptImage corrupts the assembled obj.Image (out-of-range entry
	// point plus seed-dependent text/data damage) before validation.
	CorruptImage Point = iota
	// PatternBudget makes address-pattern analysis fail with a budget-
	// exhaustion error, exercising the halved-budget retry and the
	// declare-Unknown fallback.
	PatternBudget
	// SimBudget collapses the VM instruction budget so simulation fails
	// with the budget-exhausted fault almost immediately.
	SimBudget
	// TraceFlip flips bytes in an encoded trace stream during replay.
	TraceFlip
	// WorkerPanic panics inside the experiment worker's computation,
	// exercising panic recovery in the memo layer and the worker pool.
	WorkerPanic
	// WALWrite fires inside a durable-state append, before the record
	// bytes reach the file: error mode fails the append; lethal mode
	// writes half the record and kills the process, leaving a torn tail.
	WALWrite
	// WALFsync fires between writing a record and syncing it: error mode
	// fails the append after the bytes landed; lethal mode dies with the
	// record unsynced.
	WALFsync
	// WALRename fires in compaction between writing the snapshot temp
	// file and renaming it over the log: error mode fails the compaction
	// (temp removed, old log intact); lethal mode dies with both files
	// on disk, which recovery must resolve in favour of the old log.
	WALRename
	// WALReplay fires while replaying a log at open: error mode drops
	// the unread remainder (those entries recompute); lethal mode dies
	// mid-replay, before any state was handed to the consumer.
	WALReplay
	// WorkerSpawn fires in the worker pool's supervisor as it is about
	// to start a sandbox subprocess: the spawn fails before fork/exec,
	// exercising the respawn-backoff path without burning a process.
	WorkerSpawn
	// WorkerSend fires as the supervisor writes a request frame to a
	// worker's stdin, simulating a broken pipe: the worker is destroyed
	// and the request fails at the worker stage.
	WorkerSend
	// WorkerRecv fires after the supervisor read a worker's response
	// frame: the response is discarded as torn, the worker destroyed.
	WorkerRecv
	// WorkerKill SIGKILLs the worker subprocess mid-request, right after
	// the request frame was sent: the supervisor observes an EOF where
	// the response should be — the chaos storm's mid-request slaughter.
	WorkerKill
	numPoints
)

var pointNames = [numPoints]string{
	"image", "pattern", "sim", "trace", "worker",
	"wal:write", "wal:fsync", "wal:rename", "wal:replay",
	"worker:spawn", "worker:send", "worker:recv", "worker:kill",
}

// String returns the point's spec name ("image", "pattern", "sim",
// "trace", "worker").
func (p Point) String() string {
	if p >= 0 && int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "point(" + strconv.Itoa(int(p)) + ")"
}

// PointByName resolves a spec name to its Point.
func PointByName(name string) (Point, bool) {
	for i, n := range pointNames {
		if n == name {
			return Point(i), true
		}
	}
	return 0, false
}

// Fault is both the error a fault-injected seam reports and the value an
// injected panic carries, so recovery sites and tests can recognise
// deliberate faults with errors.As or Injected.
type Fault struct {
	Point  Point
	Target string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s fault armed for %s", f.Point, f.Target)
}

// Injected reports whether err originates from the fault injector.
func Injected(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// Plan is a deterministic set of armed fault points. The zero target
// count semantics: Arm fires on every query, ArmN on the first n.
// "*" as a target matches any queried target.
type Plan struct {
	seed   int64
	lethal atomic.Bool
	mu     sync.Mutex
	arms   map[string]int // point\x00target -> remaining fires (-1 = unlimited)
}

// NewPlan returns an empty plan with the given seed. The seed drives
// every derived random stream (image corruption, byte flips), so equal
// seeds produce equal degraded output.
func NewPlan(seed int64) *Plan {
	return &Plan{seed: seed, arms: map[string]int{}}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// SetLethal switches the plan's disk seams (the wal:* points) between
// error mode (the default: an armed seam reports an injected error) and
// lethal mode, where an armed seam kills the process with SIGKILL in
// the middle of the I/O operation. Lethal mode exists for the crash-
// recovery matrix: a subprocess armed with a lethal plan really dies
// mid-write, and the parent asserts the store recovers. The CLI arms it
// via the DELINQ_FAULT_LETHAL=1 environment hook.
func (p *Plan) SetLethal(v bool) { p.lethal.Store(v) }

// Lethal reports whether the installed plan's disk seams kill the
// process instead of returning errors. False when no plan is installed.
func Lethal() bool {
	p := active.Load()
	return p != nil && p.lethal.Load()
}

func armKey(pt Point, target string) string { return pt.String() + "\x00" + target }

// Arm makes the (point, target) seam fire on every query. Target "*"
// matches every target.
func (p *Plan) Arm(pt Point, target string) {
	p.mu.Lock()
	p.arms[armKey(pt, target)] = -1
	p.mu.Unlock()
}

// ArmN makes the (point, target) seam fire on the first n queries only;
// later queries pass through. Used to test retry paths.
func (p *Plan) ArmN(pt Point, target string, n int) {
	p.mu.Lock()
	p.arms[armKey(pt, target)] = n
	p.mu.Unlock()
}

// take consumes one firing if the seam is armed for target (exact match
// first, then the "*" wildcard).
func (p *Plan) take(pt Point, target string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, key := range [2]string{armKey(pt, target), armKey(pt, "*")} {
		n, ok := p.arms[key]
		if !ok || n == 0 {
			continue
		}
		if n > 0 {
			p.arms[key] = n - 1
		}
		return true
	}
	return false
}

// ParsePlan builds a plan from a compact spec: comma-separated
// "point=target" pairs, each optionally suffixed "#n" to fire only the
// first n times. Points are named image, pattern, sim, trace, worker;
// the target "*" arms every target. Example:
//
//	sim=181.mcf,worker=130.li,pattern=008.espresso#1
func ParsePlan(spec string, seed int64) (*Plan, error) {
	p := NewPlan(seed)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, target, ok := strings.Cut(part, "=")
		if !ok || target == "" {
			return nil, fmt.Errorf("faultinject: bad spec entry %q (want point=target)", part)
		}
		pt, ok := PointByName(name)
		if !ok {
			return nil, fmt.Errorf("faultinject: unknown fault point %q (valid: %s)",
				name, strings.Join(pointNames[:], ", "))
		}
		if base, count, hasN := strings.Cut(target, "#"); hasN {
			n, err := strconv.Atoi(count)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("faultinject: bad fire count in %q", part)
			}
			p.ArmN(pt, base, n)
		} else {
			p.Arm(pt, target)
		}
	}
	return p, nil
}

// The installed plan. An atomic pointer keeps the disarmed fast path at
// a single load.
var active atomic.Pointer[Plan]

// Install makes p the active plan for every seam; nil disarms.
func Install(p *Plan) { active.Store(p) }

// Clear disarms all seams.
func Clear() { active.Store(nil) }

// Active returns the installed plan, or nil.
func Active() *Plan { return active.Load() }

// Fires reports whether the seam is armed for target, consuming one
// firing. The fault-free path is one atomic load.
func Fires(pt Point, target string) bool {
	p := active.Load()
	return p != nil && p.take(pt, target)
}

// Error returns a *Fault error if the seam fires, else nil.
func Error(pt Point, target string) error {
	if Fires(pt, target) {
		return &Fault{Point: pt, Target: target}
	}
	return nil
}

// Crash panics with a *Fault if the seam fires. The panic is the whole
// point: it exercises the pipeline's recovery paths (memo layer, worker
// pool, renderer); it is unreachable unless a plan deliberately arms
// this seam.
func Crash(pt Point, target string) {
	if Fires(pt, target) {
		panic(&Fault{Point: pt, Target: target})
	}
}

// Rand returns a deterministic random stream derived from the plan seed
// and the seam identity, or nil when no plan is installed. Equal
// (seed, point, target) triples always yield the same stream.
func Rand(pt Point, target string) *rand.Rand {
	p := active.Load()
	if p == nil {
		return nil
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", p.seed, pt, target)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Reader wraps r with a deterministic byte-flipper if the seam fires;
// otherwise it returns r unchanged.
func Reader(pt Point, target string, r io.Reader) io.Reader {
	if !Fires(pt, target) {
		return r
	}
	rng := Rand(pt, target)
	period := 17 + rng.Intn(48)
	return &flipReader{r: r, period: period, bit: byte(1 << rng.Intn(8))}
}

// flipReader flips one bit of every period-th byte it passes through.
type flipReader struct {
	r      io.Reader
	n      int
	period int
	bit    byte
}

func (f *flipReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	for i := 0; i < n; i++ {
		f.n++
		if f.n%f.period == 0 {
			p[i] ^= f.bit
		}
	}
	return n, err
}

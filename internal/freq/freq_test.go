package freq

import (
	"testing"

	"delinq/internal/asm"
	"delinq/internal/disasm"
	"delinq/internal/minic"
)

func estimate(t *testing.T, src string) (*disasm.Program, *Profile) {
	t.Helper()
	asmText, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(asmText)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	return prog, Estimate(prog, DefaultConfig())
}

// firstLoadCount returns the estimated count of the first load of fn.
func firstLoadCount(t *testing.T, prog *disasm.Program, p *Profile, fn string) int64 {
	t.Helper()
	f := prog.FuncByName(fn)
	if f == nil {
		t.Fatalf("no function %q", fn)
	}
	for i, in := range f.Insts {
		if in.IsLoad() {
			return p.ExecCount(f.PC(i))
		}
	}
	t.Fatalf("no load in %q", fn)
	return 0
}

const freqSrc = `
int a[100];
int hot(int i) { return a[i & 63]; }
int coldfn(int i) { return a[i & 7] * 2; }
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 100000; i++) s += hot(i);
	int j;
	for (i = 0; i < 10; i++)
		for (j = 0; j < 10; j++)
			s += a[i * 10 + j];
	return s & 255;
}
`

func TestLoopNestingDrivesEstimates(t *testing.T) {
	prog, p := estimate(t, freqSrc)
	main := prog.FuncByName("main")
	var depth0, depth1, depth2 int64
	for i, in := range main.Insts {
		if !in.IsLoad() {
			continue
		}
		c := p.ExecCount(main.PC(i))
		switch {
		case c >= 1000*1000:
			depth2 = c
		case c >= 1000:
			if depth1 == 0 {
				depth1 = c
			}
		default:
			depth0 = c
		}
	}
	if depth1 == 0 || depth2 == 0 {
		t.Fatalf("no loop-nest stratification: d1=%d d2=%d", depth1, depth2)
	}
	_ = depth0
	if depth2 <= depth1 {
		t.Errorf("nested loop (%d) not hotter than single loop (%d)", depth2, depth1)
	}
}

func TestCallPropagation(t *testing.T) {
	prog, p := estimate(t, freqSrc)
	// hot() is called from a loop: its loads inherit ~TripCount.
	if c := firstLoadCount(t, prog, p, "hot"); c < 1000 {
		t.Errorf("hot() estimate = %d, want >= 1000", c)
	}
	// coldfn() is never called: estimate 0 -> "rarely executed".
	if c := firstLoadCount(t, prog, p, "coldfn"); c != 0 {
		t.Errorf("uncalled function estimate = %d, want 0", c)
	}
	// main's straight-line code runs once.
	main := prog.FuncByName("main")
	if c := p.ExecCount(main.Entry); c != 1 {
		t.Errorf("main entry estimate = %d, want 1", c)
	}
}

func TestRecursionSaturates(t *testing.T) {
	prog, p := estimate(t, `
int fact(int n) {
	if (n < 2) return 1;
	return n * fact(n - 1);
}
int main() { return fact(10) & 255; }
`)
	c := firstLoadCount(t, prog, p, "fact")
	if c < 1 {
		t.Errorf("recursive function estimate = %d, want >= 1", c)
	}
	cfg := DefaultConfig()
	if c > cfg.MaxCount {
		t.Errorf("estimate %d exceeds cap", c)
	}
}

func TestDeepCallChain(t *testing.T) {
	prog, p := estimate(t, `
int a[10];
int f5(int x) { return a[x & 7]; }
int f4(int x) { return f5(x) + 1; }
int f3(int x) { return f4(x) + 1; }
int f2(int x) { return f3(x) + 1; }
int f1(int x) { return f2(x) + 1; }
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 100; i++) s += f1(i);
	return s & 255;
}
`)
	if c := firstLoadCount(t, prog, p, "f5"); c < 1000 {
		t.Errorf("deep-chain leaf estimate = %d, want >= 1000", c)
	}
}

func TestZeroForUnknownPC(t *testing.T) {
	_, p := estimate(t, `int main() { return 0; }`)
	if c := p.ExecCount(0xdeadbeec); c != 0 {
		t.Errorf("unknown pc estimate = %d", c)
	}
}

// Package freq estimates execution frequencies statically — the
// alternative to basic-block profiling that Section 5.2 of the paper
// suggests for criterion H5 ("it is entirely possible to replace
// profiling with static heuristic approximations in identifying
// infrequently executed load instructions", citing Wu-Larus and Wong).
//
// The estimator is deliberately simple, in the spirit of those papers:
// every loop is assumed to iterate TripCount times, call counts
// propagate over the call graph from the entry function, and an
// instruction's estimated count is its function's call count times
// TripCount raised to its loop-nesting depth. The absolute numbers are
// crude, but H5 only consumes them through the coarse rare/seldom/fair
// buckets, which is exactly where static estimation is credible.
package freq

import (
	"delinq/internal/cfg"
	"delinq/internal/disasm"
	"delinq/internal/isa"
)

// Config tunes the estimator.
type Config struct {
	// TripCount is the assumed iteration count of every loop
	// (default 1000: one nesting level is enough to leave the
	// "seldom executed" bucket, as with real profiles).
	TripCount int64
	// MaxCount caps estimates to avoid overflow in deep nests.
	MaxCount int64
	// RecursionPasses bounds call-count propagation through cycles in
	// the call graph.
	RecursionPasses int
}

// DefaultConfig returns the estimator used by the experiments.
func DefaultConfig() Config {
	return Config{TripCount: 1000, MaxCount: 1 << 40, RecursionPasses: 8}
}

// Profile holds estimated per-instruction execution counts and
// implements classify.ExecProfile.
type Profile struct {
	counts map[uint32]int64
}

// ExecCount returns the estimated execution count of the instruction at
// pc (0 for unreached code).
func (p *Profile) ExecCount(pc uint32) int64 { return p.counts[pc] }

// Estimate builds a static frequency profile for a program.
func Estimate(prog *disasm.Program, conf Config) *Profile {
	if conf.TripCount == 0 {
		conf = DefaultConfig()
	}
	p := &Profile{counts: map[uint32]int64{}}

	type fnInfo struct {
		fn    *disasm.Func
		graph *cfg.Graph
		depth []int
		calls int64 // estimated number of invocations
	}
	infos := map[*disasm.Func]*fnInfo{}
	for _, fn := range prog.Funcs {
		g := cfg.Build(fn)
		infos[fn] = &fnInfo{fn: fn, graph: g, depth: g.LoopDepth()}
	}

	mulCap := func(a, b int64) int64 {
		if a == 0 || b == 0 {
			return 0
		}
		if a > conf.MaxCount/b {
			return conf.MaxCount
		}
		return a * b
	}
	pow := func(base int64, exp int) int64 {
		out := int64(1)
		for i := 0; i < exp; i++ {
			out = mulCap(out, base)
		}
		return out
	}

	// The entry function runs once. Propagate call counts over the call
	// graph; a bounded number of passes handles recursion (each pass a
	// recursive call site adds another round of its caller's weight,
	// then the estimate saturates at the cap or stops growing).
	entry := prog.FuncAt(prog.Image.Entry)
	if entry == nil {
		return p
	}
	infos[entry].calls = 1
	for pass := 0; pass < conf.RecursionPasses; pass++ {
		next := map[*disasm.Func]int64{entry: 1}
		for _, fi := range infos {
			if fi.calls == 0 {
				continue
			}
			for i, in := range fi.fn.Insts {
				if in.Op != isa.JAL {
					continue
				}
				callee := prog.FuncAt(in.JumpTarget(fi.fn.PC(i)))
				if callee == nil {
					continue
				}
				siteWeight := mulCap(fi.calls, pow(conf.TripCount, fi.depth[fi.graph.BlockOf[i].Index]))
				if next[callee]+siteWeight < next[callee] { // overflow
					next[callee] = conf.MaxCount
				} else {
					next[callee] += siteWeight
				}
				if next[callee] > conf.MaxCount {
					next[callee] = conf.MaxCount
				}
			}
		}
		changed := false
		for fn, fi := range infos {
			if next[fn] != fi.calls {
				fi.calls = next[fn]
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, fi := range infos {
		for i := range fi.fn.Insts {
			d := fi.depth[fi.graph.BlockOf[i].Index]
			p.counts[fi.fn.PC(i)] = mulCap(fi.calls, pow(conf.TripCount, d))
		}
	}
	return p
}

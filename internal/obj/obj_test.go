package obj

import (
	"testing"
	"testing/quick"
)

func nodeStruct() *Type {
	node := &Type{Kind: KindStruct, Name: "Node"}
	node.Fields = []Field{
		{Name: "key", Offset: 0, Type: TypeInt},
		{Name: "val", Offset: 4, Type: TypeFloat},
		{Name: "next", Offset: 8, Type: PointerTo(node)},
	}
	return node
}

func TestTypeSize(t *testing.T) {
	cases := []struct {
		t    *Type
		want int
	}{
		{TypeInt, 4},
		{TypeChar, 1},
		{TypeFloat, 4},
		{TypeVoid, 0},
		{PointerTo(TypeChar), 4},
		{ArrayOf(10, TypeInt), 40},
		{ArrayOf(3, ArrayOf(5, TypeFloat)), 60},
		{nodeStruct(), 12},
		{&Type{Kind: KindStruct, Name: "odd", Fields: []Field{{"c", 0, TypeChar}}}, 4},
		{nil, 4},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("Size(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTypeStringParseRoundtrip(t *testing.T) {
	structs := map[string]*Type{"Node": nodeStruct()}
	cases := []string{
		"int", "char", "float", "void",
		"ptr:int", "ptr:ptr:char", "arr:16:int", "arr:4:arr:4:float",
		"ptr:struct:Node", "struct:Node", "arr:8:ptr:struct:Node",
	}
	for _, s := range cases {
		ty, err := ParseType(s, structs)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", s, err)
		}
		if got := ty.String(); got != s {
			t.Errorf("round trip of %q gave %q", s, got)
		}
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, s := range []string{"", "quux", "arr:x:int", "arr:10", "ptr:bogus", "struct:"} {
		if _, err := ParseType(s, nil); err == nil {
			t.Errorf("ParseType(%q) succeeded; want error", s)
		}
	}
}

func TestParseTypeUnknownStructDegrades(t *testing.T) {
	ty, err := ParseType("struct:Mystery", map[string]*Type{})
	if err != nil {
		t.Fatal(err)
	}
	if ty.Kind != KindStruct || ty.Name != "Mystery" || len(ty.Fields) != 0 {
		t.Errorf("got %+v", ty)
	}
}

func TestFieldAt(t *testing.T) {
	n := nodeStruct()
	if f := n.FieldAt(0); f == nil || f.Name != "key" {
		t.Errorf("FieldAt(0) = %v", f)
	}
	if f := n.FieldAt(5); f == nil || f.Name != "val" {
		t.Errorf("FieldAt(5) = %v", f)
	}
	if f := n.FieldAt(8); f == nil || f.Name != "next" {
		t.Errorf("FieldAt(8) = %v", f)
	}
	if f := n.FieldAt(100); f != nil {
		t.Errorf("FieldAt(100) = %v, want nil", f)
	}
	if f := TypeInt.FieldAt(0); f != nil {
		t.Errorf("int FieldAt = %v, want nil", f)
	}
}

func buildTestImage() *Image {
	im := New()
	node := nodeStruct()
	im.Structs["Node"] = node
	im.Text = []uint32{0x27bdffe0, 0xafbf001c, 0x03e00008, 0, 0x23bd0020}
	im.Data = []byte{1, 2, 3, 4, 0, 0, 0, 0}
	im.BSS = 16
	im.Entry = TextBase
	im.Syms = []Sym{
		{
			Name: "main", Addr: TextBase, Size: 12, Kind: SymFunc,
			FrameSize: 32,
			Locals: []Local{
				{Name: "x", Offset: 8, Type: TypeInt},
				{Name: "p", Offset: 12, Type: PointerTo(node)},
			},
		},
		{Name: "helper", Addr: TextBase + 12, Size: 8, Kind: SymFunc},
		{Name: "tbl", Addr: DataBase, Size: 8, Kind: SymData, Type: ArrayOf(2, TypeInt)},
		{Name: "zbuf", Addr: DataBase + 8, Size: 16, Kind: SymData, Type: ArrayOf(16, TypeChar)},
	}
	im.SrcNames = map[uint32]string{TextBase: "main.c:1"}
	return im
}

func TestImageLookups(t *testing.T) {
	im := buildTestImage()
	if s, ok := im.Lookup("main"); !ok || s.Kind != SymFunc {
		t.Fatalf("Lookup(main) = %v, %v", s, ok)
	}
	if _, ok := im.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	if f, ok := im.FuncAt(TextBase + 8); !ok || f.Name != "main" {
		t.Errorf("FuncAt = %v, %v; want main", f, ok)
	}
	if f, ok := im.FuncAt(TextBase + 12); !ok || f.Name != "helper" {
		t.Errorf("FuncAt = %v, %v; want helper", f, ok)
	}
	if _, ok := im.FuncAt(TextBase + 100); ok {
		t.Error("FuncAt past end succeeded")
	}
	if s, ok := im.DataSymAt(DataBase + 4); !ok || s.Name != "tbl" {
		t.Errorf("DataSymAt = %v, %v; want tbl", s, ok)
	}
	if s, ok := im.DataSymAt(DataBase + 9); !ok || s.Name != "zbuf" {
		t.Errorf("DataSymAt = %v, %v; want zbuf", s, ok)
	}
	if _, ok := im.DataSymAt(DataBase + 1000); ok {
		t.Error("DataSymAt past end succeeded")
	}
	fns := im.Funcs()
	if len(fns) != 2 || fns[0].Name != "main" || fns[1].Name != "helper" {
		t.Errorf("Funcs = %v", fns)
	}
	if w, ok := im.Word(TextBase + 4); !ok || w != 0xafbf001c {
		t.Errorf("Word = %#x, %v", w, ok)
	}
	if _, ok := im.Word(TextBase + 2); ok {
		t.Error("unaligned Word succeeded")
	}
	if got := im.DataEnd(); got != DataBase+8+16 {
		t.Errorf("DataEnd = %#x", got)
	}
}

func TestImageEncodeDecodeRoundtrip(t *testing.T) {
	im := buildTestImage()
	b, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImage(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != im.Entry || got.BSS != im.BSS || got.GPValue != im.GPValue {
		t.Errorf("header mismatch: %+v vs %+v", got, im)
	}
	if len(got.Text) != len(im.Text) || got.Text[0] != im.Text[0] {
		t.Error("text mismatch")
	}
	if len(got.Syms) != len(im.Syms) {
		t.Fatalf("syms = %d, want %d", len(got.Syms), len(im.Syms))
	}
	m, _ := got.Lookup("main")
	if len(m.Locals) != 2 || m.Locals[1].Type.String() != "ptr:struct:Node" {
		t.Errorf("main locals decoded wrong: %+v", m.Locals)
	}
	// Self-referential struct must come back as the same cyclic graph.
	node := got.Structs["Node"]
	if node == nil || len(node.Fields) != 3 {
		t.Fatalf("Node struct decoded wrong: %+v", node)
	}
	if node.Fields[2].Type.Elem != node {
		t.Error("self-referential struct did not reconnect to itself")
	}
	tbl, _ := got.Lookup("tbl")
	if tbl.Type.String() != "arr:2:int" {
		t.Errorf("tbl type = %v", tbl.Type)
	}
	if got.SrcNames[TextBase] != "main.c:1" {
		t.Error("SrcNames lost")
	}
}

func TestImageFileRoundtrip(t *testing.T) {
	im := buildTestImage()
	path := t.TempDir() + "/prog.img"
	if err := im.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != im.Entry || len(got.Text) != len(im.Text) {
		t.Error("file round trip mismatch")
	}
}

// Property: Size is always non-negative and pointer/array composition
// behaves multiplicatively for arrays.
func TestQuickArraySize(t *testing.T) {
	f := func(n uint8, deep bool) bool {
		elem := TypeInt
		if deep {
			elem = &Type{Kind: KindArray, Len: 3, Elem: TypeFloat}
		}
		a := ArrayOf(int(n), elem)
		return a.Size() == int(n)*elem.Size() && a.Size() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package obj defines the binary image produced by the assembler and
// consumed by the simulator and the disassembler: text and data segments,
// and a symbol table carrying the source-level type information that the
// static BDH baseline classifier relies on.
package obj

import (
	"fmt"
	"strconv"
	"strings"
)

// TypeKind discriminates source-level types recorded in the symbol table.
type TypeKind int

const (
	KindInt TypeKind = iota
	KindChar
	KindFloat
	KindPointer
	KindArray
	KindStruct
	KindVoid
)

// Type is a source-level type as recorded in symbol-table metadata. Struct
// types are recorded by name plus a flat field list so that the BDH
// classifier can resolve field offsets without the original source.
type Type struct {
	Kind   TypeKind
	Elem   *Type   // element type for pointers and arrays
	Len    int     // array length
	Name   string  // struct tag
	Fields []Field // struct fields, offset-ordered
}

// Field is one struct member.
type Field struct {
	Name   string
	Offset int
	Type   *Type
}

// Predefined scalar types.
var (
	TypeInt   = &Type{Kind: KindInt}
	TypeChar  = &Type{Kind: KindChar}
	TypeFloat = &Type{Kind: KindFloat}
	TypeVoid  = &Type{Kind: KindVoid}
)

// PointerTo returns the pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: KindPointer, Elem: elem} }

// ArrayOf returns the array type [n]elem.
func ArrayOf(n int, elem *Type) *Type { return &Type{Kind: KindArray, Len: n, Elem: elem} }

// Size returns the storage size of the type in bytes. Struct sizes are
// derived from the last field (fields are offset-ordered), rounded up to
// word alignment.
func (t *Type) Size() int {
	if t == nil {
		return 4
	}
	switch t.Kind {
	case KindChar:
		return 1
	case KindInt, KindFloat, KindPointer:
		return 4
	case KindVoid:
		return 0
	case KindArray:
		return t.Len * t.Elem.Size()
	case KindStruct:
		if len(t.Fields) == 0 {
			return 0
		}
		last := t.Fields[len(t.Fields)-1]
		sz := last.Offset + last.Type.Size()
		return (sz + 3) &^ 3
	}
	return 4
}

// IsPointer reports whether the type is a pointer.
func (t *Type) IsPointer() bool { return t != nil && t.Kind == KindPointer }

// IsAggregate reports whether the type is an array or struct.
func (t *Type) IsAggregate() bool {
	return t != nil && (t.Kind == KindArray || t.Kind == KindStruct)
}

// FieldAt returns the struct field covering byte offset off, descending
// into nested aggregates, or nil.
func (t *Type) FieldAt(off int) *Field {
	if t == nil || t.Kind != KindStruct {
		return nil
	}
	for i := range t.Fields {
		f := &t.Fields[i]
		if off >= f.Offset && off < f.Offset+f.Type.Size() {
			return f
		}
	}
	return nil
}

// String renders the type in the compact notation used by symbol-table
// directives: "int", "char", "float", "void", "ptr:T", "arr:N:T",
// "struct:Name".
func (t *Type) String() string {
	if t == nil {
		return "int"
	}
	switch t.Kind {
	case KindInt:
		return "int"
	case KindChar:
		return "char"
	case KindFloat:
		return "float"
	case KindVoid:
		return "void"
	case KindPointer:
		return "ptr:" + t.Elem.String()
	case KindArray:
		return fmt.Sprintf("arr:%d:%s", t.Len, t.Elem.String())
	case KindStruct:
		return "struct:" + t.Name
	}
	return "int"
}

// ParseType parses the compact type notation produced by Type.String.
// Struct references are resolved against structs, which maps tag names to
// their full definitions; an unknown tag yields a named struct with no
// fields rather than an error, so partially linked metadata degrades
// gracefully.
func ParseType(s string, structs map[string]*Type) (*Type, error) {
	switch {
	case s == "int":
		return TypeInt, nil
	case s == "char":
		return TypeChar, nil
	case s == "float":
		return TypeFloat, nil
	case s == "void":
		return TypeVoid, nil
	case strings.HasPrefix(s, "ptr:"):
		elem, err := ParseType(s[len("ptr:"):], structs)
		if err != nil {
			return nil, err
		}
		return PointerTo(elem), nil
	case strings.HasPrefix(s, "arr:"):
		rest := s[len("arr:"):]
		i := strings.IndexByte(rest, ':')
		if i < 0 {
			return nil, fmt.Errorf("obj: malformed array type %q", s)
		}
		n, err := strconv.Atoi(rest[:i])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("obj: bad array length in %q", s)
		}
		elem, err := ParseType(rest[i+1:], structs)
		if err != nil {
			return nil, err
		}
		return ArrayOf(n, elem), nil
	case strings.HasPrefix(s, "struct:"):
		name := s[len("struct:"):]
		if name == "" {
			return nil, fmt.Errorf("obj: empty struct tag in %q", s)
		}
		if def, ok := structs[name]; ok {
			return def, nil
		}
		return &Type{Kind: KindStruct, Name: name}, nil
	}
	return nil, fmt.Errorf("obj: unknown type notation %q", s)
}

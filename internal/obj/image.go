package obj

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sort"
)

// Default memory layout. Text and data live in disjoint regions; the heap
// grows upward from the end of static data via the sbrk syscall and the
// stack grows downward from StackTop.
const (
	TextBase uint32 = 0x00400000
	DataBase uint32 = 0x10000000
	StackTop uint32 = 0x7ffff000
	// GPBias places $gp in the middle of the 64 KB directly addressable
	// small-data window, as conventional MIPS toolchains do.
	GPBias uint32 = 0x8000
)

// SymKind distinguishes function symbols from data symbols.
type SymKind int

const (
	SymFunc SymKind = iota
	SymData
)

// Local describes one stack-resident local variable or spilled parameter
// of a function: its byte offset from $sp within the function body and its
// source type. The static BDH baseline uses this to classify stack loads.
type Local struct {
	Name   string
	Offset int32
	Type   *Type
}

// Sym is one symbol-table entry.
type Sym struct {
	Name      string
	Addr      uint32
	Size      uint32
	Kind      SymKind
	Type      *Type   // data symbols: source type
	Locals    []Local // function symbols: frame layout
	FrameSize int32   // function symbols: total frame bytes
}

// Image is a fully linked program: code, initialised data, and symbols.
type Image struct {
	Entry    uint32
	Text     []uint32 // machine words, based at TextBase
	ISA      string   // machine description name; "" means "mips"
	Data     []byte   // initialised data, based at DataBase
	BSS      uint32   // zero-initialised bytes following Data
	GPValue  uint32   // runtime value of $gp (small-data anchor on gp-less ISAs)
	Syms     []Sym
	Structs  map[string]*Type // struct tag -> definition
	SrcNames map[uint32]string
}

// ISAName returns the image's machine description name, mapping the
// empty string (images from before machine descriptions existed) to
// "mips".
func (im *Image) ISAName() string {
	if im.ISA == "" {
		return "mips"
	}
	return im.ISA
}

// New returns an empty image with the default layout.
func New() *Image {
	return &Image{
		GPValue: DataBase + GPBias,
		Structs: map[string]*Type{},
	}
}

// TextEnd returns the first address past the text segment.
func (im *Image) TextEnd() uint32 { return TextBase + uint32(len(im.Text))*4 }

// Validate checks that the image is executable at all: a non-empty text
// segment and an aligned entry point inside it. DecodeImage stays
// lenient (the wire format round-trips arbitrary images); Validate is
// the gate execution paths apply before running one.
func (im *Image) Validate() error {
	if len(im.Text) == 0 {
		return fmt.Errorf("obj: image has an empty text segment")
	}
	if im.Entry < TextBase || im.Entry >= im.TextEnd() || im.Entry%4 != 0 {
		return fmt.Errorf("obj: entry point %#x outside text [%#x,%#x)",
			im.Entry, TextBase, im.TextEnd())
	}
	return nil
}

// DataEnd returns the first address past static data (including BSS); the
// heap begins here.
func (im *Image) DataEnd() uint32 { return DataBase + uint32(len(im.Data)) + im.BSS }

// Word returns the text word at address pc.
func (im *Image) Word(pc uint32) (uint32, bool) {
	if pc < TextBase || pc >= im.TextEnd() || pc%4 != 0 {
		return 0, false
	}
	return im.Text[(pc-TextBase)/4], true
}

// Lookup returns the symbol with the given name.
func (im *Image) Lookup(name string) (*Sym, bool) {
	for i := range im.Syms {
		if im.Syms[i].Name == name {
			return &im.Syms[i], true
		}
	}
	return nil, false
}

// FuncAt returns the function symbol whose extent covers pc.
func (im *Image) FuncAt(pc uint32) (*Sym, bool) {
	var best *Sym
	for i := range im.Syms {
		s := &im.Syms[i]
		if s.Kind != SymFunc || pc < s.Addr {
			continue
		}
		if pc < s.Addr+s.Size && (best == nil || s.Addr > best.Addr) {
			best = s
		}
	}
	return best, best != nil
}

// DataSymAt returns the data symbol covering the given data address.
func (im *Image) DataSymAt(addr uint32) (*Sym, bool) {
	for i := range im.Syms {
		s := &im.Syms[i]
		if s.Kind == SymData && addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return nil, false
}

// Funcs returns the function symbols in address order.
func (im *Image) Funcs() []*Sym {
	var fns []*Sym
	for i := range im.Syms {
		if im.Syms[i].Kind == SymFunc {
			fns = append(fns, &im.Syms[i])
		}
	}
	sort.Slice(fns, func(a, b int) bool { return fns[a].Addr < fns[b].Addr })
	return fns
}

// The wire format flattens types to their compact string notation: the
// in-memory *Type graph is cyclic for self-referential structs (a list
// node pointing at its own struct type), which gob cannot encode.
type wireLocal struct {
	Name   string
	Offset int32
	Type   string
}

type wireSym struct {
	Name      string
	Addr      uint32
	Size      uint32
	Kind      SymKind
	Type      string
	Locals    []wireLocal
	FrameSize int32
}

type wireField struct {
	Name   string
	Offset int
	Type   string
}

type wireImage struct {
	Entry    uint32
	Text     []uint32
	ISA      string
	Data     []byte
	BSS      uint32
	GPValue  uint32
	Syms     []wireSym
	Structs  map[string][]wireField
	SrcNames map[uint32]string
}

func typeString(t *Type) string {
	if t == nil {
		return ""
	}
	return t.String()
}

// Encode serialises the image.
func (im *Image) Encode() ([]byte, error) {
	w := wireImage{
		Entry: im.Entry, Text: im.Text, ISA: im.ISA, Data: im.Data, BSS: im.BSS,
		GPValue: im.GPValue, SrcNames: im.SrcNames,
		Structs: map[string][]wireField{},
	}
	for name, st := range im.Structs {
		var fs []wireField
		for _, f := range st.Fields {
			fs = append(fs, wireField{f.Name, f.Offset, typeString(f.Type)})
		}
		w.Structs[name] = fs
	}
	for _, s := range im.Syms {
		ws := wireSym{
			Name: s.Name, Addr: s.Addr, Size: s.Size, Kind: s.Kind,
			Type: typeString(s.Type), FrameSize: s.FrameSize,
		}
		for _, l := range s.Locals {
			ws.Locals = append(ws.Locals, wireLocal{l.Name, l.Offset, typeString(l.Type)})
		}
		w.Syms = append(w.Syms, ws)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("obj: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func parseTypeOrNil(s string, structs map[string]*Type) (*Type, error) {
	if s == "" {
		return nil, nil
	}
	return ParseType(s, structs)
}

// DecodeImage deserialises an image produced by Encode.
func DecodeImage(b []byte) (*Image, error) {
	var w wireImage
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("obj: decode: %w", err)
	}
	im := &Image{
		Entry: w.Entry, Text: w.Text, ISA: w.ISA, Data: w.Data, BSS: w.BSS,
		GPValue: w.GPValue, SrcNames: w.SrcNames,
		Structs: map[string]*Type{},
	}
	// Struct resolution is two-phase so self-referential structs decode
	// into the same cyclic graphs Encode started from.
	for name := range w.Structs {
		im.Structs[name] = &Type{Kind: KindStruct, Name: name}
	}
	for name, wfs := range w.Structs {
		st := im.Structs[name]
		for _, wf := range wfs {
			ft, err := ParseType(wf.Type, im.Structs)
			if err != nil {
				return nil, err
			}
			st.Fields = append(st.Fields, Field{wf.Name, wf.Offset, ft})
		}
	}
	for _, ws := range w.Syms {
		t, err := parseTypeOrNil(ws.Type, im.Structs)
		if err != nil {
			return nil, err
		}
		s := Sym{
			Name: ws.Name, Addr: ws.Addr, Size: ws.Size, Kind: ws.Kind,
			Type: t, FrameSize: ws.FrameSize,
		}
		for _, wl := range ws.Locals {
			lt, err := parseTypeOrNil(wl.Type, im.Structs)
			if err != nil {
				return nil, err
			}
			s.Locals = append(s.Locals, Local{wl.Name, wl.Offset, lt})
		}
		im.Syms = append(im.Syms, s)
	}
	return im, nil
}

// WriteFile serialises the image to a file.
func (im *Image) WriteFile(path string) error {
	b, err := im.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile loads an image written by WriteFile.
func ReadFile(path string) (*Image, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeImage(b)
}

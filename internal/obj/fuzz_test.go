package obj

import (
	"testing"
)

// fuzzSeedImage builds a small but representative image whose encoding
// seeds the decode fuzzer.
func fuzzSeedImage() *Image {
	im := New()
	node := &Type{Kind: KindStruct, Name: "node"}
	node.Fields = []Field{
		{Name: "v", Offset: 0, Type: TypeInt},
		{Name: "next", Offset: 4, Type: PointerTo(node)},
	}
	im.Structs["node"] = node
	im.Entry = TextBase
	im.Text = []uint32{0x24020005, 0x03e00008}
	im.Data = []byte{1, 2, 3, 4}
	im.BSS = 8
	im.Syms = []Sym{
		{Name: "main", Addr: TextBase, Size: 8, Kind: SymFunc, FrameSize: 16,
			Locals: []Local{{Name: "x", Offset: 8, Type: TypeInt}}},
		{Name: "g", Addr: DataBase, Size: 4, Kind: SymData, Type: PointerTo(node)},
	}
	im.SrcNames = map[uint32]string{TextBase: "main.c:1"}
	return im
}

// FuzzDecodeImage throws arbitrary bytes at the image decoder: corrupt
// input must produce an error, never a panic, and anything that decodes
// must survive an encode/decode round trip.
func FuzzDecodeImage(f *testing.F) {
	if b, err := fuzzSeedImage().Encode(); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x13, 0x37})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<16 {
			return
		}
		im, err := DecodeImage(b)
		if err != nil {
			return
		}
		b2, err := im.Encode()
		if err != nil {
			t.Fatalf("decoded image fails to re-encode: %v", err)
		}
		if _, err := DecodeImage(b2); err != nil {
			t.Fatalf("re-encoded image fails to decode: %v", err)
		}
	})
}

// Cross-cutting invariants of the whole pipeline, checked on real
// benchmark binaries: things no single package can verify alone.
package delinq

import (
	"testing"

	"delinq/internal/baseline"
	"delinq/internal/bench"
	"delinq/internal/cache"
	"delinq/internal/classify"
	"delinq/internal/core"
	"delinq/internal/metrics"
	"delinq/internal/obj"
	"delinq/internal/pattern"
	"delinq/internal/tables"
)

func loadCtx(t *testing.T, name string) *tables.Ctx {
	t.Helper()
	ctx, err := tables.Load(bench.ByName(name), false, false)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestMissesNeverExceedExecutions: M(i,C) ≤ E(i) for every load under
// every geometry — each execution can miss at most once.
func TestMissesNeverExceedExecutions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	for _, name := range []string{"181.mcf", "164.gzip", "099.go"} {
		ctx := loadCtx(t, name)
		for gi := range tables.StdGeoms {
			for _, s := range ctx.Stats(gi) {
				if s.Misses > s.Exec {
					t.Errorf("%s geom %d pc %#x: misses %d > exec %d",
						name, gi, s.PC, s.Misses, s.Exec)
				}
			}
		}
	}
}

// TestLargerCacheNeverMuchWorse: total load misses must not grow
// significantly with cache size at fixed associativity (LRU inclusion
// holds per set count; geometry changes can reshuffle slightly).
func TestLargerCacheNeverMuchWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	order := []int{tables.GeomBaseline, tables.Geom16K, tables.Geom32K, tables.Geom64K}
	for _, name := range []string{"181.mcf", "179.art", "129.compress"} {
		ctx := loadCtx(t, name)
		prev := int64(-1)
		for _, gi := range order {
			total := metrics.TotalMisses(ctx.Stats(gi))
			if prev >= 0 && float64(total) > 1.05*float64(prev) {
				t.Errorf("%s: misses grew with cache size: %d -> %d", name, prev, total)
			}
			prev = total
		}
	}
}

// TestDeltaIsDeterministic: two independent compilations and analyses of
// the same source produce the same delinquent set.
func TestDeltaIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("compilation in short mode")
	}
	src := bench.ByName("147.vortex").Source
	sets := make([]map[uint32]bool, 2)
	for i := range sets {
		res, err := core.IdentifySource(src, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = res.DeltaSet()
	}
	if len(sets[0]) != len(sets[1]) {
		t.Fatalf("set sizes differ: %d vs %d", len(sets[0]), len(sets[1]))
	}
	for pc := range sets[0] {
		if !sets[1][pc] {
			t.Errorf("pc %#x only in first set", pc)
		}
	}
}

// TestImageRoundTripPreservesAnalysis: serialising the image to its file
// format and reloading must not change the analysis (symbol/type info
// feeds BDH; text feeds everything).
func TestImageRoundTripPreservesAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("compilation in short mode")
	}
	img, err := core.BuildSource(bench.ByName("022.li").Source, false)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := img.Encode()
	if err != nil {
		t.Fatal(err)
	}
	img2, err := obj.DecodeImage(blob)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.IdentifyImage(img, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.IdentifyImage(img2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := r1.DeltaSet(), r2.DeltaSet()
	if len(d1) != len(d2) {
		t.Fatalf("delta differs after round trip: %d vs %d", len(d1), len(d2))
	}
	b1 := baseline.BDH(r1.Prog, r1.Loads)
	b2 := baseline.BDH(r2.Prog, r2.Loads)
	if len(b1) != len(b2) {
		t.Errorf("BDH differs after round trip: %d vs %d", len(b1), len(b2))
	}
}

// TestHeuristicSubsetOfOKN: with frequency classes off, every load the
// heuristic flags is also flagged by OKN — the paper says its method
// "in general subsumes" OKN in the other direction: OKN is the coarser
// superset.
func TestHeuristicSubsetOfOKN(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	cfg, err := tables.HeuristicConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"181.mcf", "008.espresso", "197.parser"} {
		ctx := loadCtx(t, name)
		okn := baseline.OKN(ctx.Build.Loads)
		for pc := range ctx.Delta(cfg) {
			if !okn[pc] {
				t.Errorf("%s: heuristic flags %#x but OKN does not", name, pc)
			}
		}
	}
}

// TestEveryLoadHasAPattern: the analysis must produce at least one
// address pattern for every load in every benchmark binary.
func TestEveryLoadHasAPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("compilation in short mode")
	}
	for _, b := range bench.All() {
		bd, err := bench.Compile(b, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, ld := range bd.Loads {
			if len(ld.Patterns) == 0 {
				t.Errorf("%s: load at %#x has no patterns", b.Name, ld.PC)
			}
			for _, p := range ld.Patterns {
				if p.Size() > pattern.DefaultConfig().MaxNodes+8 {
					t.Errorf("%s: pattern at %#x exceeds node bound: %d",
						b.Name, ld.PC, p.Size())
				}
			}
		}
	}
}

// TestFrequencyClassesOnlyShrinkDelta: adding AG8/AG9 can only remove
// loads from Δ (negative weights), never add.
func TestFrequencyClassesOnlyShrinkDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	cfgN, err := tables.HeuristicConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	cfgF, err := tables.HeuristicConfig(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"300.twolf", "126.gcc"} {
		ctx := loadCtx(t, name)
		without := ctx.Delta(cfgN)
		with := ctx.Delta(cfgF)
		for pc := range with {
			if !without[pc] {
				t.Errorf("%s: %#x flagged only with frequency classes", name, pc)
			}
		}
		if len(with) > len(without) {
			t.Errorf("%s: frequency classes grew delta %d -> %d",
				name, len(without), len(with))
		}
	}
}

// TestClassifyScoreMatchesManualPhi recomputes φ by hand for a sample of
// loads and compares with the classifier.
func TestClassifyScoreMatchesManualPhi(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	ctx := loadCtx(t, "181.mcf")
	cfg, err := tables.HeuristicConfig(true)
	if err != nil {
		t.Fatal(err)
	}
	scored := ctx.Heuristic(cfg)
	for _, s := range scored[:10] {
		freqClass := classify.FreqClass(ctx.Run.ExecCount(s.Load.PC))
		best := 0.0
		first := true
		for _, p := range s.Load.Patterns {
			sum := 0.0
			for _, c := range classify.PatternClasses(classify.FeaturesOf(p)) {
				sum += (*cfg.Weights)[c]
			}
			if freqClass != 0 {
				sum += (*cfg.Weights)[freqClass]
			}
			if first || sum > best {
				best = sum
				first = false
			}
		}
		if diff := best - s.Phi; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("pc %#x: manual phi %v != scored %v", s.Load.PC, best, s.Phi)
		}
	}
}

// TestCacheModelAgainstDirectSimulation cross-checks the per-load sum of
// misses against the cache's own counter for every benchmark.
func TestCacheModelAgainstDirectSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	for _, b := range bench.All()[:6] {
		bd, err := bench.Compile(b, false)
		if err != nil {
			t.Fatal(err)
		}
		run, err := bench.Simulate(bd, b.Input1, []cache.Config{cache.Baseline})
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, s := range run.LoadStats(0) {
			sum += s.Misses
		}
		if uint64(sum) != run.Caches[0].Stats().LoadMisses {
			t.Errorf("%s: per-load miss sum %d != cache counter %d",
				b.Name, sum, run.Caches[0].Stats().LoadMisses)
		}
	}
}

// The cross-ISA golden guard: table S5 compares the heuristic on the
// MIPS and ARM backends with per-ISA retrained weights, and its
// committed rendering must not move. Kept separate from golden_test.go
// so the original MIPS golden guard stays untouched.
package delinq

import (
	"bytes"
	"os"
	"testing"

	"delinq/internal/tables"
)

// TestTableISAGolden pins the cross-ISA comparison table (S5), rendered
// on demand like S4: the committed tables_isa.txt must be reproduced
// byte for byte, covering both the mips and arm analysis pipelines and
// their per-ISA retrained weights.
func TestTableISAGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark sweep in short mode")
	}
	want, err := os.ReadFile("tables_isa.txt")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := tables.ByID("S5")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := tab.Render(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("table S5 diverges from tables_isa.txt:\n%s", got.Bytes())
	}
}
